//! Typed structured events and their JSONL wire format.
//!
//! Events are hand-serialized (the build environment has no serde
//! runtime) to one flat JSON object per line:
//!
//! ```json
//! {"event":"SlotCleared","slot":12,"t_ns":83012,"price_per_kw_hour":0.25,...}
//! ```
//!
//! [`Event::from_jsonl`] parses that format back, which keeps the
//! round-trip honest (see the crate tests) and lets downstream tooling
//! and the repro binary consume `telemetry.jsonl` without a JSON
//! library.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use spotdc_units::{MonotonicNanos, Slot};

/// One structured telemetry event from the market pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A market slot cleared (once per clearing run; per-PDU clearing
    /// emits one event per PDU sub-market).
    SlotCleared {
        /// The market slot that cleared.
        slot: Slot,
        /// Monotonic timestamp of the clearing.
        at: MonotonicNanos,
        /// Uniform clearing price, $/kW/h.
        price_per_kw_hour: f64,
        /// Spot capacity sold, watts.
        sold_watts: f64,
        /// Operator revenue rate at the clearing point, $/h.
        revenue_rate_per_hour: f64,
        /// Candidate prices evaluated by the clearing search.
        candidates_evaluated: u64,
    },
    /// The operator issued a spot-capacity prediction for a slot.
    PredictionIssued {
        /// The slot the prediction is for.
        slot: Slot,
        /// Monotonic timestamp of the prediction.
        at: MonotonicNanos,
        /// Predicted UPS-level spot capacity, watts.
        ups_watts: f64,
        /// Sum of predicted per-PDU spot capacities, watts.
        pdu_total_watts: f64,
        /// Number of PDUs in the prediction.
        pdus: u64,
    },
    /// A clearing allocation ran into a capacity constraint (the
    /// aggregate grant reached a PDU or UPS spot bound).
    ConstraintBound {
        /// The slot being cleared.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// Which constraint bound ("ups" or "pdu-<i>").
        constraint: String,
        /// The binding limit, watts.
        limit_watts: f64,
    },
    /// A power emergency (PDU or UPS overload) was observed.
    EmergencyTriggered {
        /// The slot in which the overload was observed.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// Overloaded level ("ups" or "pdu-<i>").
        level: String,
        /// Observed load, watts.
        load_watts: f64,
        /// Rated capacity at that level, watts.
        capacity_watts: f64,
    },
    /// A tenant bid was rejected before the market ran (admission
    /// control: unmetered racks, malformed bids, ...).
    BidRejected {
        /// The slot the bid targeted.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// The bidding tenant's dense index.
        tenant: u64,
        /// Number of racks in the rejected bid.
        racks: u64,
        /// Human-readable rejection reason.
        reason: String,
    },
    /// The fault-injection plan fired a fault (simulation only).
    FaultInjected {
        /// The slot the fault fired in.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// Fault channel ("meter-dropout", "bid-late", ...).
        kind: String,
        /// The affected target ("rack-3", "tenant-1", "predictor").
        target: String,
    },
    /// The operator degraded gracefully instead of failing: stale-meter
    /// fallback, withheld PDU spot, or a late bid rolled to the next
    /// slot.
    DegradedDecision {
        /// The slot of the decision.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// Degradation kind ("stale-meter", "late-bid", "cap-shed").
        kind: String,
        /// Human-readable detail of what was degraded.
        detail: String,
        /// Watts affected by the decision (penalized, withheld or shed).
        watts: f64,
    },
    /// The emergency cap controller acted on a capacity level.
    CapApplied {
        /// The slot the cap was applied in.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// Protected level ("ups" or "pdu-<i>").
        level: String,
        /// Spot watts shed at the level.
        shed_watts: f64,
        /// Guaranteed watts capped at the level.
        capped_watts: f64,
    },
    /// The post-clearing invariant checker found a violation of the
    /// paper's Eqns. 1-4 (rack/PDU/UPS spot limits, uniform-price
    /// consistency).
    InvariantViolated {
        /// The slot whose allocation violated an invariant.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// Human-readable description of the violated invariant.
        violation: String,
    },
    /// A timing span closed: one pipeline stage (or other instrumented
    /// region) finished for a slot. Emitted by the engine loop so
    /// post-hoc tooling (`spotdc-trace`) can reconstruct per-stage
    /// latency distributions from the JSONL log alone, without access
    /// to the in-process registry histograms.
    SpanClosed {
        /// The slot the span ran in.
        slot: Slot,
        /// Monotonic timestamp at close.
        at: MonotonicNanos,
        /// Span name (`stage.sense`, `stage.clear_market`, ...).
        span: String,
        /// Measured duration, nanoseconds.
        nanos: u64,
    },
    /// How the clearing engine resolved a slot: a full price sweep, a
    /// fingerprint cache hit, or an incremental delta re-sweep over only
    /// the price rows affected by changed bids. Lets `spotdc-trace`
    /// report incremental-clearing effectiveness per run.
    ClearingCache {
        /// The slot that was cleared.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// Resolution mode ("full", "hit", "delta", "legacy").
        mode: String,
        /// Candidate prices considered by the search.
        candidates_total: u64,
        /// Candidate prices actually re-swept (0 on a cache hit).
        candidates_swept: u64,
    },
    /// The durable engine cut a checkpoint: the full cross-slot market
    /// state was atomically persisted and the write-ahead journal was
    /// restarted.
    CheckpointWritten {
        /// The first slot *not* covered by the checkpoint (i.e. the
        /// checkpoint captures slots `0..slot`).
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// Size of the finished checkpoint file, bytes.
        bytes: u64,
        /// Wall time spent serializing and persisting, nanoseconds.
        nanos: u64,
    },
    /// A resumed run recovered from durable state: the latest valid
    /// checkpoint was loaded and the journaled slots were replayed.
    RecoveryPerformed {
        /// The first slot simulated live after recovery.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// Slots covered by the checkpoint the recovery started from
        /// (0 when no checkpoint existed and replay started cold).
        snapshot_slot: u64,
        /// Journaled slots deterministically re-simulated.
        replayed_slots: u64,
    },
    /// Recovery found a damaged journal tail and truncated it: either a
    /// partial record from the crash ("torn") or a CRC mismatch under a
    /// complete record ("corrupt").
    JournalTruncated {
        /// The slot recovery resumed from after truncation.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// Damage class: "torn" or "corrupt".
        reason: String,
        /// Bytes discarded from the journal tail.
        dropped_bytes: u64,
    },
    /// Aggregated wire traffic for one controller↔agents exchange
    /// (distributed mode only). Emitted once per slot by the controller
    /// with `phase: "slot"`, and once per `AssignShard` handshake with
    /// `phase: "setup"` so connection setup never pollutes per-slot
    /// tallies. Byte counts include the 8-byte frame header.
    ShardRpc {
        /// The slot the exchange belongs to (for setup: the slot at
        /// which the handshake happened, `0` at startup).
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// "slot" for per-slot clearing traffic, "setup" for the
        /// `AssignShard` handshake.
        phase: String,
        /// Frames sent controller → agents.
        frames_sent: u64,
        /// Frames received back from agents.
        frames_recv: u64,
        /// Bytes sent controller → agents.
        bytes_sent: u64,
        /// Bytes received back from agents.
        bytes_recv: u64,
        /// Session tasks shipped as deltas.
        delta_tasks: u64,
        /// Session tasks shipped in full.
        full_tasks: u64,
    },
    /// A shard agent returned its clearing results for a slot
    /// (distributed mode only).
    ShardCleared {
        /// The slot that was cleared.
        slot: Slot,
        /// Monotonic timestamp.
        at: MonotonicNanos,
        /// The replying shard agent.
        shard: u64,
        /// Clearing results in the reply (one per dispatched
        /// sub-market).
        outcomes: u64,
        /// Controller-observed latency from dispatch to reply,
        /// nanoseconds (includes wire and queueing time).
        nanos: u64,
    },
}

impl Event {
    /// The event's type tag as serialized in the `"event"` field.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SlotCleared { .. } => "SlotCleared",
            Event::PredictionIssued { .. } => "PredictionIssued",
            Event::ConstraintBound { .. } => "ConstraintBound",
            Event::EmergencyTriggered { .. } => "EmergencyTriggered",
            Event::BidRejected { .. } => "BidRejected",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::DegradedDecision { .. } => "DegradedDecision",
            Event::CapApplied { .. } => "CapApplied",
            Event::InvariantViolated { .. } => "InvariantViolated",
            Event::SpanClosed { .. } => "SpanClosed",
            Event::ClearingCache { .. } => "ClearingCache",
            Event::CheckpointWritten { .. } => "CheckpointWritten",
            Event::RecoveryPerformed { .. } => "RecoveryPerformed",
            Event::JournalTruncated { .. } => "JournalTruncated",
            Event::ShardRpc { .. } => "ShardRpc",
            Event::ShardCleared { .. } => "ShardCleared",
        }
    }

    /// The market slot the event belongs to.
    #[must_use]
    pub fn slot(&self) -> Slot {
        match self {
            Event::SlotCleared { slot, .. }
            | Event::PredictionIssued { slot, .. }
            | Event::ConstraintBound { slot, .. }
            | Event::EmergencyTriggered { slot, .. }
            | Event::BidRejected { slot, .. }
            | Event::FaultInjected { slot, .. }
            | Event::DegradedDecision { slot, .. }
            | Event::CapApplied { slot, .. }
            | Event::InvariantViolated { slot, .. }
            | Event::SpanClosed { slot, .. }
            | Event::ClearingCache { slot, .. }
            | Event::CheckpointWritten { slot, .. }
            | Event::RecoveryPerformed { slot, .. }
            | Event::JournalTruncated { slot, .. }
            | Event::ShardRpc { slot, .. }
            | Event::ShardCleared { slot, .. } => *slot,
        }
    }

    /// The event's monotonic timestamp.
    #[must_use]
    pub fn at(&self) -> MonotonicNanos {
        match self {
            Event::SlotCleared { at, .. }
            | Event::PredictionIssued { at, .. }
            | Event::ConstraintBound { at, .. }
            | Event::EmergencyTriggered { at, .. }
            | Event::BidRejected { at, .. }
            | Event::FaultInjected { at, .. }
            | Event::DegradedDecision { at, .. }
            | Event::CapApplied { at, .. }
            | Event::InvariantViolated { at, .. }
            | Event::SpanClosed { at, .. }
            | Event::ClearingCache { at, .. }
            | Event::CheckpointWritten { at, .. }
            | Event::RecoveryPerformed { at, .. }
            | Event::JournalTruncated { at, .. }
            | Event::ShardRpc { at, .. }
            | Event::ShardCleared { at, .. } => *at,
        }
    }

    /// Whether the event must bypass `sample_every` down-sampling.
    ///
    /// Routine per-slot traffic (clearings, predictions) can be sampled;
    /// anomalies (emergencies, rejections, binding constraints) and
    /// one-per-run lifecycle events (recoveries, journal truncations)
    /// are rare and always recorded. Checkpoint writes are routine
    /// cadence traffic and may be sampled.
    #[must_use]
    pub fn is_critical(&self) -> bool {
        matches!(
            self,
            Event::ConstraintBound { .. }
                | Event::EmergencyTriggered { .. }
                | Event::BidRejected { .. }
                | Event::DegradedDecision { .. }
                | Event::CapApplied { .. }
                | Event::InvariantViolated { .. }
                | Event::RecoveryPerformed { .. }
                | Event::JournalTruncated { .. }
        )
    }

    /// Whether the event is a capacity-emergency-class anomaly that
    /// should trip the flight recorder's black-box dump: an observed
    /// overload, an invariant violation, or cap-shedding (either the
    /// cap controller acting or a `cap-shed` degradation decision).
    ///
    /// A strict subset of [`Event::is_critical`]: routine degradations
    /// (stale meters, late bids) and bid rejections are critical enough
    /// to bypass sampling but not emergencies worth a disk snapshot.
    #[must_use]
    pub fn is_blackbox_trigger(&self) -> bool {
        match self {
            Event::EmergencyTriggered { .. }
            | Event::InvariantViolated { .. }
            | Event::CapApplied { .. } => true,
            Event::DegradedDecision { kind, .. } => kind == "cap-shed",
            _ => false,
        }
    }

    /// Serializes the event as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_tagged(None)
    }

    /// Serializes the event as one JSON line, with an optional `"run"`
    /// field naming the experiment/run the event belongs to.
    ///
    /// Concurrent simulations interleave their lines in a shared
    /// `telemetry.jsonl`; the tag keeps each line attributable.
    /// [`Event::from_jsonl`] ignores the field on read-back, so tagged
    /// and untagged lines parse identically.
    #[must_use]
    pub fn to_jsonl_tagged(&self, run: Option<&str>) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(out, "{{\"event\":\"{}\"", self.kind());
        if let Some(run) = run {
            let _ = write!(out, ",\"run\":{}", json_str(run));
        }
        let _ = write!(
            out,
            ",\"slot\":{},\"t_ns\":{}",
            self.slot().index(),
            self.at().as_nanos()
        );
        match self {
            Event::SlotCleared {
                price_per_kw_hour,
                sold_watts,
                revenue_rate_per_hour,
                candidates_evaluated,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"price_per_kw_hour\":{},\"sold_watts\":{},\
                     \"revenue_rate_per_hour\":{},\"candidates_evaluated\":{}",
                    json_num(*price_per_kw_hour),
                    json_num(*sold_watts),
                    json_num(*revenue_rate_per_hour),
                    candidates_evaluated
                );
            }
            Event::PredictionIssued {
                ups_watts,
                pdu_total_watts,
                pdus,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"ups_watts\":{},\"pdu_total_watts\":{},\"pdus\":{}",
                    json_num(*ups_watts),
                    json_num(*pdu_total_watts),
                    pdus
                );
            }
            Event::ConstraintBound {
                constraint,
                limit_watts,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"constraint\":{},\"limit_watts\":{}",
                    json_str(constraint),
                    json_num(*limit_watts)
                );
            }
            Event::EmergencyTriggered {
                level,
                load_watts,
                capacity_watts,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"level\":{},\"load_watts\":{},\"capacity_watts\":{}",
                    json_str(level),
                    json_num(*load_watts),
                    json_num(*capacity_watts)
                );
            }
            Event::BidRejected {
                tenant,
                racks,
                reason,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"tenant\":{},\"racks\":{},\"reason\":{}",
                    tenant,
                    racks,
                    json_str(reason)
                );
            }
            Event::FaultInjected { kind, target, .. } => {
                let _ = write!(
                    out,
                    ",\"kind\":{},\"target\":{}",
                    json_str(kind),
                    json_str(target)
                );
            }
            Event::DegradedDecision {
                kind,
                detail,
                watts,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":{},\"detail\":{},\"watts\":{}",
                    json_str(kind),
                    json_str(detail),
                    json_num(*watts)
                );
            }
            Event::CapApplied {
                level,
                shed_watts,
                capped_watts,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"level\":{},\"shed_watts\":{},\"capped_watts\":{}",
                    json_str(level),
                    json_num(*shed_watts),
                    json_num(*capped_watts)
                );
            }
            Event::InvariantViolated { violation, .. } => {
                let _ = write!(out, ",\"violation\":{}", json_str(violation));
            }
            Event::SpanClosed { span, nanos, .. } => {
                let _ = write!(out, ",\"span\":{},\"nanos\":{}", json_str(span), nanos);
            }
            Event::ClearingCache {
                mode,
                candidates_total,
                candidates_swept,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"mode\":{},\"candidates_total\":{},\"candidates_swept\":{}",
                    json_str(mode),
                    candidates_total,
                    candidates_swept
                );
            }
            Event::CheckpointWritten { bytes, nanos, .. } => {
                let _ = write!(out, ",\"bytes\":{bytes},\"nanos\":{nanos}");
            }
            Event::RecoveryPerformed {
                snapshot_slot,
                replayed_slots,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"snapshot_slot\":{snapshot_slot},\"replayed_slots\":{replayed_slots}"
                );
            }
            Event::JournalTruncated {
                reason,
                dropped_bytes,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"reason\":{},\"dropped_bytes\":{}",
                    json_str(reason),
                    dropped_bytes
                );
            }
            Event::ShardRpc {
                phase,
                frames_sent,
                frames_recv,
                bytes_sent,
                bytes_recv,
                delta_tasks,
                full_tasks,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"phase\":{},\"frames_sent\":{},\"frames_recv\":{},\"bytes_sent\":{},\"bytes_recv\":{},\"delta_tasks\":{},\"full_tasks\":{}",
                    json_str(phase),
                    frames_sent,
                    frames_recv,
                    bytes_sent,
                    bytes_recv,
                    delta_tasks,
                    full_tasks
                );
            }
            Event::ShardCleared {
                shard,
                outcomes,
                nanos,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"shard\":{shard},\"outcomes\":{outcomes},\"nanos\":{nanos}"
                );
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line produced by [`Event::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or semantic problem
    /// (malformed JSON, unknown event tag, missing field).
    pub fn from_jsonl(line: &str) -> Result<Event, String> {
        Ok(Event::from_jsonl_tagged(line)?.1)
    }

    /// Parses one JSONL line, also returning the `"run"` tag written by
    /// [`Event::to_jsonl_tagged`] when present. This is what log
    /// consumers (`spotdc-trace`) use to keep interleaved runs
    /// attributable.
    ///
    /// # Errors
    ///
    /// Same as [`Event::from_jsonl`].
    pub fn from_jsonl_tagged(line: &str) -> Result<(Option<String>, Event), String> {
        let fields = parse_flat_object(line)?;
        let run = match fields.get("run") {
            Some(JsonValue::Str(s)) => Some(s.clone()),
            Some(JsonValue::Num(_)) => return Err("field \"run\" is not a string".to_owned()),
            None => None,
        };
        let str_field = |k: &str| -> Result<&str, String> {
            match fields.get(k) {
                Some(JsonValue::Str(s)) => Ok(s),
                Some(JsonValue::Num(_)) => Err(format!("field {k:?} is not a string")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let num = |k: &str| -> Result<f64, String> {
            match fields.get(k) {
                Some(JsonValue::Num(raw)) => raw
                    .parse::<f64>()
                    .map_err(|_| format!("field {k:?}: bad number {raw:?}")),
                Some(JsonValue::Str(_)) => Err(format!("field {k:?} is not a number")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let int = |k: &str| -> Result<u64, String> {
            match fields.get(k) {
                Some(JsonValue::Num(raw)) => raw
                    .parse::<u64>()
                    .map_err(|_| format!("field {k:?}: bad integer {raw:?}")),
                Some(JsonValue::Str(_)) => Err(format!("field {k:?} is not a number")),
                None => Err(format!("missing field {k:?}")),
            }
        };

        let slot = Slot::new(int("slot")?);
        let at = MonotonicNanos::from_raw(int("t_ns")?);
        let event = match str_field("event")? {
            "SlotCleared" => Ok(Event::SlotCleared {
                slot,
                at,
                price_per_kw_hour: num("price_per_kw_hour")?,
                sold_watts: num("sold_watts")?,
                revenue_rate_per_hour: num("revenue_rate_per_hour")?,
                candidates_evaluated: int("candidates_evaluated")?,
            }),
            "PredictionIssued" => Ok(Event::PredictionIssued {
                slot,
                at,
                ups_watts: num("ups_watts")?,
                pdu_total_watts: num("pdu_total_watts")?,
                pdus: int("pdus")?,
            }),
            "ConstraintBound" => Ok(Event::ConstraintBound {
                slot,
                at,
                constraint: str_field("constraint")?.to_owned(),
                limit_watts: num("limit_watts")?,
            }),
            "EmergencyTriggered" => Ok(Event::EmergencyTriggered {
                slot,
                at,
                level: str_field("level")?.to_owned(),
                load_watts: num("load_watts")?,
                capacity_watts: num("capacity_watts")?,
            }),
            "BidRejected" => Ok(Event::BidRejected {
                slot,
                at,
                tenant: int("tenant")?,
                racks: int("racks")?,
                reason: str_field("reason")?.to_owned(),
            }),
            "FaultInjected" => Ok(Event::FaultInjected {
                slot,
                at,
                kind: str_field("kind")?.to_owned(),
                target: str_field("target")?.to_owned(),
            }),
            "DegradedDecision" => Ok(Event::DegradedDecision {
                slot,
                at,
                kind: str_field("kind")?.to_owned(),
                detail: str_field("detail")?.to_owned(),
                watts: num("watts")?,
            }),
            "CapApplied" => Ok(Event::CapApplied {
                slot,
                at,
                level: str_field("level")?.to_owned(),
                shed_watts: num("shed_watts")?,
                capped_watts: num("capped_watts")?,
            }),
            "InvariantViolated" => Ok(Event::InvariantViolated {
                slot,
                at,
                violation: str_field("violation")?.to_owned(),
            }),
            "SpanClosed" => Ok(Event::SpanClosed {
                slot,
                at,
                span: str_field("span")?.to_owned(),
                nanos: int("nanos")?,
            }),
            "ClearingCache" => Ok(Event::ClearingCache {
                slot,
                at,
                mode: str_field("mode")?.to_owned(),
                candidates_total: int("candidates_total")?,
                candidates_swept: int("candidates_swept")?,
            }),
            "CheckpointWritten" => Ok(Event::CheckpointWritten {
                slot,
                at,
                bytes: int("bytes")?,
                nanos: int("nanos")?,
            }),
            "RecoveryPerformed" => Ok(Event::RecoveryPerformed {
                slot,
                at,
                snapshot_slot: int("snapshot_slot")?,
                replayed_slots: int("replayed_slots")?,
            }),
            "JournalTruncated" => Ok(Event::JournalTruncated {
                slot,
                at,
                reason: str_field("reason")?.to_owned(),
                dropped_bytes: int("dropped_bytes")?,
            }),
            "ShardRpc" => Ok(Event::ShardRpc {
                slot,
                at,
                phase: str_field("phase")?.to_owned(),
                frames_sent: int("frames_sent")?,
                frames_recv: int("frames_recv")?,
                bytes_sent: int("bytes_sent")?,
                bytes_recv: int("bytes_recv")?,
                delta_tasks: int("delta_tasks")?,
                full_tasks: int("full_tasks")?,
            }),
            "ShardCleared" => Ok(Event::ShardCleared {
                slot,
                at,
                shard: int("shard")?,
                outcomes: int("outcomes")?,
                nanos: int("nanos")?,
            }),
            other => Err(format!("unknown event tag {other:?}")),
        }?;
        Ok((run, event))
    }
}

/// Formats an `f64` so it survives the round-trip (JSON has no
/// Infinity/NaN; clamp those to null-ish sentinels is worse than being
/// explicit, so they serialize as 0 with the sign preserved for -0).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        let s = x.to_string();
        // `f64::to_string` never produces exponents for the magnitudes
        // telemetry sees, but be safe: JSON accepts them anyway.
        s
    } else {
        "0".to_owned()
    }
}

/// Quotes and escapes a JSON string.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A value in a flat JSON object: a string, or a number kept as its raw
/// token so integers parse losslessly.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(String),
}

/// Parses a single-level JSON object (`{"k":v,...}` with string or
/// numeric values — all this crate ever emits).
fn parse_flat_object(input: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut chars = input.trim().chars().peekable();
    let mut out = BTreeMap::new();
    if chars.next() != Some('{') {
        return Err("expected '{'".to_owned());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected key or '}}', found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let mut raw = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        raw.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonValue::Num(raw)
            }
            other => return Err(format!("unsupported value start {other:?}")),
        };
        out.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => {}
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after object".to_owned());
    }
    Ok(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".to_owned());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_owned()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::SlotCleared {
                slot: Slot::new(12),
                at: MonotonicNanos::from_raw(83_012),
                price_per_kw_hour: 0.25,
                sold_watts: 1_234.5,
                revenue_rate_per_hour: 0.3086,
                candidates_evaluated: 101,
            },
            Event::PredictionIssued {
                slot: Slot::new(12),
                at: MonotonicNanos::from_raw(82_000),
                ups_watts: 5_000.0,
                pdu_total_watts: 6_200.0,
                pdus: 4,
            },
            Event::ConstraintBound {
                slot: Slot::new(13),
                at: MonotonicNanos::from_raw(90_001),
                constraint: "pdu-2".to_owned(),
                limit_watts: 800.0,
            },
            Event::EmergencyTriggered {
                slot: Slot::new(14),
                at: MonotonicNanos::from_raw(95_555),
                level: "ups".to_owned(),
                load_watts: 10_500.0,
                capacity_watts: 10_000.0,
            },
            Event::BidRejected {
                slot: Slot::new(15),
                at: MonotonicNanos::from_raw(99_999),
                tenant: 3,
                racks: 2,
                reason: "rack \"r7\" not metered\nretry next slot".to_owned(),
            },
            Event::FaultInjected {
                slot: Slot::new(16),
                at: MonotonicNanos::from_raw(100_001),
                kind: "meter-dropout".to_owned(),
                target: "rack-3".to_owned(),
            },
            Event::DegradedDecision {
                slot: Slot::new(17),
                at: MonotonicNanos::from_raw(100_055),
                kind: "stale-meter".to_owned(),
                detail: "2 stale racks, 1 withheld pdu".to_owned(),
                watts: 120.5,
            },
            Event::CapApplied {
                slot: Slot::new(18),
                at: MonotonicNanos::from_raw(100_101),
                level: "pdu-1".to_owned(),
                shed_watts: 35.0,
                capped_watts: 0.0,
            },
            Event::InvariantViolated {
                slot: Slot::new(19),
                at: MonotonicNanos::from_raw(100_201),
                violation: "pdu-0 spot 410 W exceeds predicted 400 W".to_owned(),
            },
            Event::SpanClosed {
                slot: Slot::new(20),
                at: MonotonicNanos::from_raw(100_301),
                span: "stage.clear_market".to_owned(),
                nanos: 48_211,
            },
            Event::ClearingCache {
                slot: Slot::new(21),
                at: MonotonicNanos::from_raw(100_401),
                mode: "delta".to_owned(),
                candidates_total: 101,
                candidates_swept: 7,
            },
            Event::CheckpointWritten {
                slot: Slot::new(50),
                at: MonotonicNanos::from_raw(100_501),
                bytes: 18_432,
                nanos: 312_000,
            },
            Event::RecoveryPerformed {
                slot: Slot::new(73),
                at: MonotonicNanos::from_raw(100_601),
                snapshot_slot: 50,
                replayed_slots: 23,
            },
            Event::JournalTruncated {
                slot: Slot::new(73),
                at: MonotonicNanos::from_raw(100_600),
                reason: "torn".to_owned(),
                dropped_bytes: 41,
            },
            Event::ShardRpc {
                slot: Slot::new(80),
                at: MonotonicNanos::from_raw(100_700),
                phase: "slot".to_owned(),
                frames_sent: 2,
                frames_recv: 2,
                bytes_sent: 612,
                bytes_recv: 498,
                delta_tasks: 5,
                full_tasks: 1,
            },
            Event::ShardCleared {
                slot: Slot::new(80),
                at: MonotonicNanos::from_raw(100_750),
                shard: 1,
                outcomes: 3,
                nanos: 52_000,
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_preserves_every_event() {
        for event in sample_events() {
            let line = event.to_jsonl();
            assert!(!line.contains('\n'), "JSONL must be one line: {line}");
            let back = Event::from_jsonl(&line).expect(&line);
            assert_eq!(back, event, "line: {line}");
        }
    }

    #[test]
    fn jsonl_shape_is_stable() {
        let line = sample_events()[0].to_jsonl();
        assert_eq!(
            line,
            "{\"event\":\"SlotCleared\",\"slot\":12,\"t_ns\":83012,\
             \"price_per_kw_hour\":0.25,\"sold_watts\":1234.5,\
             \"revenue_rate_per_hour\":0.3086,\"candidates_evaluated\":101}"
        );
    }

    #[test]
    fn tagged_lines_carry_run_and_parse_back() {
        for event in sample_events() {
            let line = event.to_jsonl_tagged(Some("fig12"));
            assert!(line.starts_with("{\"event\":\""), "line: {line}");
            assert!(line.contains("\"run\":\"fig12\""), "line: {line}");
            let back = Event::from_jsonl(&line).expect(&line);
            assert_eq!(back, event, "run tag must not change the payload");
        }
        // Untagged serialization is unchanged.
        assert_eq!(
            sample_events()[0].to_jsonl_tagged(None),
            sample_events()[0].to_jsonl()
        );
    }

    #[test]
    fn run_tags_with_quotes_are_escaped() {
        let line = sample_events()[0].to_jsonl_tagged(Some("ab\"c"));
        assert!(line.contains("\"run\":\"ab\\\"c\""), "line: {line}");
        assert!(Event::from_jsonl(&line).is_ok());
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(Event::from_jsonl("").is_err());
        assert!(Event::from_jsonl("{}").is_err());
        assert!(Event::from_jsonl("{\"event\":\"Nope\",\"slot\":1,\"t_ns\":2}").is_err());
        assert!(Event::from_jsonl("{\"event\":\"SlotCleared\",\"slot\":1,\"t_ns\":2}").is_err());
        assert!(Event::from_jsonl("{\"slot\":1").is_err());
        assert!(Event::from_jsonl("{\"slot\":1} trailing").is_err());
    }

    #[test]
    fn parser_tolerates_whitespace() {
        let spaced = "{ \"event\" : \"PredictionIssued\" , \"slot\" : 7 , \"t_ns\" : 1 ,\
                      \"ups_watts\" : 1.5 , \"pdu_total_watts\" : 2.5 , \"pdus\" : 2 }";
        let event = Event::from_jsonl(spaced).unwrap();
        assert_eq!(event.slot(), Slot::new(7));
        assert_eq!(event.kind(), "PredictionIssued");
    }

    #[test]
    fn critical_events_bypass_sampling() {
        let kinds: Vec<(String, bool)> = sample_events()
            .iter()
            .map(|e| (e.kind().to_owned(), e.is_critical()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("SlotCleared".to_owned(), false),
                ("PredictionIssued".to_owned(), false),
                ("ConstraintBound".to_owned(), true),
                ("EmergencyTriggered".to_owned(), true),
                ("BidRejected".to_owned(), true),
                ("FaultInjected".to_owned(), false),
                ("DegradedDecision".to_owned(), true),
                ("CapApplied".to_owned(), true),
                ("InvariantViolated".to_owned(), true),
                ("SpanClosed".to_owned(), false),
                ("ClearingCache".to_owned(), false),
                ("CheckpointWritten".to_owned(), false),
                ("RecoveryPerformed".to_owned(), true),
                ("JournalTruncated".to_owned(), true),
                ("ShardRpc".to_owned(), false),
                ("ShardCleared".to_owned(), false),
            ]
        );
    }

    #[test]
    fn blackbox_triggers_are_the_emergency_subset() {
        let triggers: Vec<&str> = sample_events()
            .iter()
            .filter(|e| e.is_blackbox_trigger())
            .map(Event::kind)
            .collect();
        assert_eq!(
            triggers,
            vec!["EmergencyTriggered", "CapApplied", "InvariantViolated"]
        );
        // Every trigger is also critical (never down-sampled away).
        for e in sample_events() {
            if e.is_blackbox_trigger() {
                assert!(e.is_critical(), "{} must be critical", e.kind());
            }
        }
        // A cap-shed degradation triggers; other degradations don't.
        let shed = Event::DegradedDecision {
            slot: Slot::new(1),
            at: MonotonicNanos::from_raw(1),
            kind: "cap-shed".to_owned(),
            detail: "pdu-0".to_owned(),
            watts: 10.0,
        };
        assert!(shed.is_blackbox_trigger());
    }

    #[test]
    fn from_jsonl_tagged_recovers_the_run() {
        for event in sample_events() {
            let line = event.to_jsonl_tagged(Some("fig14"));
            let (run, back) = Event::from_jsonl_tagged(&line).expect(&line);
            assert_eq!(run.as_deref(), Some("fig14"));
            assert_eq!(back, event);
            let (none, back) = Event::from_jsonl_tagged(&event.to_jsonl()).unwrap();
            assert_eq!(none, None);
            assert_eq!(back, event);
        }
    }
}
