//! Golden-report refactor guard.
//!
//! Runs all three operating modes at seed 42 over a short horizon and
//! compares every field of the resulting [`SimReport`] against checked-in
//! snapshots, byte for byte. The snapshots were generated from the
//! pre-pipeline monolithic slot loop, so any refactor of the engine that
//! changes behaviour — float accumulation order, RNG draw order, fault
//! scheduling — fails here before it can silently shift experiment
//! numbers.
//!
//! Regenerate (only when a behaviour change is intended and understood):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_report
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use spotdc_dist::TransportKind;
use spotdc_sim::engine::{EngineConfig, Simulation};
use spotdc_sim::{Mode, Scenario};

const SEED: u64 = 42;
const SLOTS: u64 = 120;

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

/// Renders every field of the report in a stable line-oriented form:
/// one `Debug` line per slot record, then the scalar summary fields.
/// Rust's `Debug` for `f64` is shortest-roundtrip formatting, so equal
/// bytes ⇔ equal values.
fn render(mode: Mode, inner_jobs: usize) -> String {
    render_sharded(mode, inner_jobs, 1, TransportKind::InProc)
}

fn render_sharded(
    mode: Mode,
    inner_jobs: usize,
    shards: usize,
    shard_transport: TransportKind,
) -> String {
    let engine = EngineConfig {
        inner_jobs,
        shards,
        shard_transport,
        ..EngineConfig::new(mode)
    };
    let report = Simulation::new(Scenario::testbed(SEED), engine).run(SLOTS);
    let mut s = String::new();
    writeln!(
        s,
        "# SimReport golden — mode {mode}, seed {SEED}, {SLOTS} slots"
    )
    .unwrap();
    for r in &report.records {
        writeln!(s, "{r:?}").unwrap();
    }
    writeln!(s, "slot={:?}", report.slot).unwrap();
    writeln!(s, "subscriptions={:?}", report.subscriptions).unwrap();
    writeln!(s, "headrooms={:?}", report.headrooms).unwrap();
    writeln!(
        s,
        "total_subscribed={:?} ups_capacity={:?}",
        report.total_subscribed, report.ups_capacity
    )
    .unwrap();
    writeln!(
        s,
        "emergencies={} transient_overshoots={} degraded_slots={} \
         invariant_violations={} faults_injected={}",
        report.emergencies,
        report.transient_overshoots,
        report.degraded_slots,
        report.invariant_violations,
        report.faults_injected
    )
    .unwrap();
    s
}

#[test]
fn sim_reports_match_golden_snapshots() {
    let cases = [
        (Mode::PowerCapped, "powercapped.txt"),
        (Mode::SpotDc, "spotdc.txt"),
        (Mode::MaxPerf, "maxperf.txt"),
    ];
    for (mode, file) in cases {
        let path = golden_path(file);
        let rendered = render(mode, 1);
        // The within-slot parallel path must reproduce the serial
        // snapshot byte for byte — same floats, same RNG order.
        assert_eq!(
            rendered,
            render(mode, 4),
            "{mode} report at inner_jobs=4 diverged from the serial render"
        );
        // The distributed clearing plane must too, for every shard
        // count and transport (the controller merges serially, so the
        // grid collapses to one report).
        for shards in [2, 4] {
            assert_eq!(
                rendered,
                render_sharded(mode, 1, shards, TransportKind::InProc),
                "{mode} report at shards={shards} (inproc) diverged from the serial render"
            );
            if spotdc_dist::agent_binary().is_some() {
                assert_eq!(
                    rendered,
                    render_sharded(mode, 1, shards, TransportKind::Subprocess),
                    "{mode} report at shards={shards} (subprocess) diverged from the \
                     serial render"
                );
            } else {
                // `cargo test --test golden_report` alone does not build
                // the agent; the workspace run and scripts/smoke_dist
                // cover the subprocess leg.
                eprintln!("skipping subprocess leg: spotdc-agent not built");
            }
        }
        if std::env::var_os("GOLDEN_REGEN").is_some() {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {} ({e}); regenerate with \
                 GOLDEN_REGEN=1 cargo test --test golden_report",
                path.display()
            )
        });
        if expected != rendered {
            // Point at the first diverging line rather than dumping both
            // multi-thousand-line bodies.
            let line = expected
                .lines()
                .zip(rendered.lines())
                .position(|(a, b)| a != b)
                .map_or_else(
                    || expected.lines().count().min(rendered.lines().count()),
                    |i| i + 1,
                );
            panic!(
                "{mode} report diverged from golden snapshot {} at line {line}\n\
                 golden  : {}\n\
                 current : {}",
                path.display(),
                expected.lines().nth(line - 1).unwrap_or("<eof>"),
                rendered.lines().nth(line - 1).unwrap_or("<eof>"),
            );
        }
    }
}
