//! Empirical statistics over traces: CDFs and variation measures.
//!
//! Three of the paper's figures are direct statistics of time series:
//! Fig. 2(b) (CDF of aggregate PDU power), Fig. 7(a) (histogram of
//! slot-to-slot PDU power variation) and Fig. 13 (CDFs of market price
//! and UPS utilization). [`Cdf`] and [`VariationStats`] compute them.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over `f64` samples.
///
/// # Examples
///
/// ```
/// use spotdc_traces::Cdf;
///
/// let cdf = Cdf::from_samples([3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples; non-finite samples are dropped.
    #[must_use]
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Cdf { sorted }
    }

    /// Number of (finite) samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The minimum sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// The maximum sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The sample mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// `P(X ≤ x)`: the fraction of samples at or below `x`.
    #[must_use]
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (nearest-rank), e.g. `quantile(0.5)` = median.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q ∉ [0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty cdf");
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// Evaluates the CDF at `points` evenly spaced values covering the
    /// sample range, returning `(x, P(X ≤ x))` pairs ready to plot.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` or the CDF is empty.
    #[must_use]
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two curve points");
        assert!(!self.sorted.is_empty(), "curve of empty cdf");
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Cdf::from_samples(iter)
    }
}

/// Relative slot-to-slot variation of a time series (paper Fig. 7a).
///
/// For a series `p₀, p₁, …` the variations are
/// `|pₜ₊₁ − pₜ| / pₜ` (slots with `pₜ = 0` are skipped).
///
/// # Examples
///
/// ```
/// use spotdc_traces::VariationStats;
///
/// let v = VariationStats::from_series(&[100.0, 101.0, 99.0, 99.0]);
/// assert!(v.fraction_within(0.025) > 0.99);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationStats {
    variations: Vec<f64>,
}

impl VariationStats {
    /// Computes relative consecutive variations of `series`.
    #[must_use]
    pub fn from_series(series: &[f64]) -> Self {
        let variations = series
            .windows(2)
            .filter(|w| w[0] != 0.0 && w[0].is_finite() && w[1].is_finite())
            .map(|w| ((w[1] - w[0]) / w[0]).abs())
            .collect();
        VariationStats { variations }
    }

    /// Number of variation samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.variations.len()
    }

    /// Whether there are no variation samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.variations.is_empty()
    }

    /// Fraction of slot transitions whose relative change is at most
    /// `bound` (e.g. `0.025` for ±2.5 %).
    #[must_use]
    pub fn fraction_within(&self, bound: f64) -> f64 {
        if self.variations.is_empty() {
            return 1.0;
        }
        self.variations.iter().filter(|&&v| v <= bound).count() as f64
            / self.variations.len() as f64
    }

    /// The largest observed relative change (0 when empty).
    #[must_use]
    pub fn max_variation(&self) -> f64 {
        self.variations.iter().cloned().fold(0.0, f64::max)
    }

    /// Histogram of variations over `bin_edges` (which must be
    /// ascending): returns one count per bin `[edge[i], edge[i+1])`,
    /// plus a final overflow bin for values ≥ the last edge.
    ///
    /// # Panics
    ///
    /// Panics if `bin_edges` has fewer than 2 entries or is not
    /// ascending.
    #[must_use]
    pub fn histogram(&self, bin_edges: &[f64]) -> Vec<usize> {
        assert!(bin_edges.len() >= 2, "need at least two bin edges");
        assert!(
            bin_edges.windows(2).all(|w| w[0] < w[1]),
            "bin edges must be ascending"
        );
        let mut counts = vec![0usize; bin_edges.len()];
        for &v in &self.variations {
            if v < bin_edges[0] {
                continue;
            }
            let idx = bin_edges.partition_point(|&e| e <= v);
            counts[(idx - 1).min(bin_edges.len() - 1)] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fraction_and_quantile_agree() {
        let cdf = Cdf::from_samples((1..=100).map(f64::from));
        assert_eq!(cdf.fraction_at_or_below(50.0), 0.5);
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(100.0));
    }

    #[test]
    fn cdf_handles_out_of_range_queries() {
        let cdf = Cdf::from_samples([5.0, 10.0]);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn cdf_drops_non_finite() {
        let cdf = Cdf::from_samples([1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let cdf: Cdf = (0..1000).map(|i| (i as f64).sin() + 2.0).collect();
        let curve = cdf.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_mean() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0]);
        assert!((cdf.mean() - 2.0).abs() < 1e-12);
        assert_eq!(Cdf::from_samples([]).mean(), 0.0);
    }

    #[test]
    fn variation_basic() {
        let v = VariationStats::from_series(&[100.0, 110.0, 99.0]);
        assert_eq!(v.len(), 2);
        assert!((v.max_variation() - 0.1).abs() < 1e-12);
        assert_eq!(v.fraction_within(0.05), 0.0);
        assert_eq!(v.fraction_within(0.11), 1.0);
    }

    #[test]
    fn variation_skips_zero_baseline() {
        let v = VariationStats::from_series(&[0.0, 10.0, 11.0]);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn variation_empty_series() {
        let v = VariationStats::from_series(&[]);
        assert!(v.is_empty());
        assert_eq!(v.fraction_within(0.1), 1.0);
        assert_eq!(v.max_variation(), 0.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let v = VariationStats::from_series(&[100.0, 101.0, 103.0, 200.0]);
        // variations: 0.01, ~0.0198, ~0.9417
        let h = v.histogram(&[0.0, 0.015, 0.05]);
        assert_eq!(h, vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_edges() {
        let v = VariationStats::from_series(&[1.0, 2.0]);
        let _ = v.histogram(&[0.1, 0.0]);
    }
}
