//! Identifiers for the actors and equipment in a multi-tenant data center.
//!
//! The identifiers are plain dense indices (`usize` underneath) because
//! every collection in the simulator is index-addressed; the newtypes
//! exist purely so a tenant index can never be used to address a rack.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from its dense index.
            #[must_use]
            pub const fn new(index: usize) -> Self {
                $name(index)
            }

            /// The dense index backing this identifier.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                $name(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies one tenant (an organization leasing racks and power).
    ///
    /// # Examples
    ///
    /// ```
    /// # use spotdc_units::TenantId;
    /// let t = TenantId::new(3);
    /// assert_eq!(t.index(), 3);
    /// assert_eq!(t.to_string(), "tenant-3");
    /// ```
    TenantId,
    "tenant-"
);

define_id!(
    /// Identifies one rack (the granularity of spot-capacity allocation).
    RackId,
    "rack-"
);

define_id!(
    /// Identifies one cluster-level power distribution unit.
    PduId,
    "pdu-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_through_usize() {
        let r = RackId::new(42);
        assert_eq!(usize::from(r), 42);
        assert_eq!(RackId::from(42usize), r);
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just confirm the
        // value-level behavior is consistent per type.
        assert_eq!(TenantId::new(1).to_string(), "tenant-1");
        assert_eq!(RackId::new(1).to_string(), "rack-1");
        assert_eq!(PduId::new(1).to_string(), "pdu-1");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(RackId::new(1));
        set.insert(RackId::new(1));
        set.insert(RackId::new(2));
        assert_eq!(set.len(), 2);
        assert!(RackId::new(1) < RackId::new(2));
    }
}
