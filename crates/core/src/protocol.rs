//! Operator ↔ tenant message exchange and its failure semantics.
//!
//! SpotDC's wire protocol (Fig. 5/6 of the paper) is deliberately
//! boring — periodic heartbeats, one bid submission per tenant per
//! slot, one price broadcast back — because the *failure semantics*
//! carry the safety argument: **any communication loss degrades to "no
//! spot capacity"** for the affected tenant. A lost bid simply isn't
//! cleared; a lost price broadcast means the tenant cannot know its
//! grant, so the operator revokes it and the tenant stays at its
//! guaranteed capacity. Either way the slot is safe, just less
//! profitable.
//!
//! [`CommsModel`] injects those losses deterministically (seeded
//! xorshift, no external RNG dependency) and [`ProtocolEvent`] records
//! them for the evaluation.

use serde::{Deserialize, Serialize};
use spotdc_units::{Slot, TenantId};

use crate::allocation::SpotAllocation;
use crate::bid::TenantBid;
use spotdc_power::PowerTopology;

/// A protocol-level event worth auditing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolEvent {
    /// A tenant's bid submission was lost; it will not participate
    /// this slot.
    BidLost {
        /// The affected tenant.
        tenant: TenantId,
        /// The slot whose market the bid was for.
        slot: Slot,
    },
    /// The price broadcast to a tenant was lost; its grants are revoked
    /// and it falls back to guaranteed capacity only.
    BroadcastLost {
        /// The affected tenant.
        tenant: TenantId,
        /// The slot whose allocation was revoked.
        slot: Slot,
    },
}

/// A lossy-channel model for the operator↔tenant exchange.
///
/// # Examples
///
/// ```
/// use spotdc_core::CommsModel;
///
/// let mut perfect = CommsModel::perfect();
/// assert!(perfect.bid_survives());
/// let mut lossy = CommsModel::new(1.0, 1.0, 42); // everything lost
/// assert!(!lossy.bid_survives());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommsModel {
    /// Probability a bid submission is lost, stored in parts per 2⁶⁴.
    bid_loss: u64,
    /// Probability a price broadcast is lost, in parts per 2⁶⁴.
    broadcast_loss: u64,
    state: u64,
}

impl CommsModel {
    /// A channel with the given loss probabilities (each in `[0, 1]`)
    /// and deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(bid_loss: f64, broadcast_loss: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&bid_loss), "loss probability in [0,1]");
        assert!(
            (0.0..=1.0).contains(&broadcast_loss),
            "loss probability in [0,1]"
        );
        let to_fixed = |p: f64| -> u64 {
            if p >= 1.0 {
                u64::MAX
            } else {
                (p * (u64::MAX as f64)) as u64
            }
        };
        CommsModel {
            bid_loss: to_fixed(bid_loss),
            broadcast_loss: to_fixed(broadcast_loss),
            state: seed | 1, // xorshift state must be non-zero
        }
    }

    /// A lossless channel.
    #[must_use]
    pub fn perfect() -> Self {
        CommsModel::new(0.0, 0.0, 1)
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Draws whether one bid submission survives the channel.
    pub fn bid_survives(&mut self) -> bool {
        let threshold = self.bid_loss;
        threshold == 0 || self.next() >= threshold
    }

    /// Draws whether one price broadcast survives the channel.
    pub fn broadcast_survives(&mut self) -> bool {
        let threshold = self.broadcast_loss;
        threshold == 0 || self.next() >= threshold
    }

    /// Filters a slot's bid submissions through the channel in place,
    /// keeping the survivors in `bids` (order preserved, one loss draw
    /// per bid) and returning the loss events. In-place so the
    /// engine's hoisted bid buffer is reused across slots instead of
    /// reallocated.
    pub fn deliver_bids(&mut self, slot: Slot, bids: &mut Vec<TenantBid>) -> Vec<ProtocolEvent> {
        let mut events = Vec::new();
        bids.retain(|bid| {
            if self.bid_survives() {
                true
            } else {
                events.push(ProtocolEvent::BidLost {
                    tenant: bid.tenant(),
                    slot,
                });
                false
            }
        });
        events
    }

    /// Applies broadcast losses to a cleared allocation: for each
    /// tenant whose broadcast is lost, every one of its racks' grants
    /// is revoked (the no-spot fallback). Returns the loss events.
    pub fn deliver_broadcasts(
        &mut self,
        topology: &PowerTopology,
        allocation: &mut SpotAllocation,
        tenants: impl IntoIterator<Item = TenantId>,
    ) -> Vec<ProtocolEvent> {
        let slot = allocation.slot();
        let mut events = Vec::new();
        for tenant in tenants {
            if !self.broadcast_survives() {
                for &rack in topology.racks_of_tenant(tenant) {
                    allocation.revoke(rack);
                }
                events.push(ProtocolEvent::BroadcastLost { tenant, slot });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::RackBid;
    use crate::demand::StepBid;
    use spotdc_power::topology::TopologyBuilder;
    use spotdc_units::{Price, RackId, Watts};

    fn bid(tenant: usize) -> TenantBid {
        TenantBid::new(
            TenantId::new(tenant),
            vec![RackBid::new(
                RackId::new(tenant),
                StepBid::new(Watts::new(10.0), Price::per_kw_hour(0.2))
                    .unwrap()
                    .into(),
            )],
        )
        .unwrap()
    }

    #[test]
    fn perfect_channel_loses_nothing() {
        let mut ch = CommsModel::perfect();
        let mut kept = vec![bid(0), bid(1), bid(2)];
        let events = ch.deliver_bids(Slot::ZERO, &mut kept);
        assert_eq!(kept.len(), 3);
        assert!(events.is_empty());
    }

    #[test]
    fn total_loss_loses_everything() {
        let mut ch = CommsModel::new(1.0, 1.0, 7);
        let mut kept = vec![bid(0), bid(1)];
        let events = ch.deliver_bids(Slot::new(3), &mut kept);
        assert!(kept.is_empty());
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            ProtocolEvent::BidLost { tenant, slot }
                if tenant == TenantId::new(0) && slot == Slot::new(3)
        ));
    }

    #[test]
    fn loss_rate_statistically_matches() {
        let mut ch = CommsModel::new(0.3, 0.0, 99);
        let n = 100_000;
        let losses = (0..n).filter(|_| !ch.bid_survives()).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = CommsModel::new(0.5, 0.5, 5);
        let mut b = CommsModel::new(0.5, 0.5, 5);
        for _ in 0..100 {
            assert_eq!(a.bid_survives(), b.bid_survives());
        }
    }

    #[test]
    fn lost_broadcast_revokes_all_tenant_racks() {
        let topo = TopologyBuilder::new(Watts::new(400.0))
            .pdu(Watts::new(400.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(50.0))
            .build()
            .unwrap();
        let mut alloc = SpotAllocation::new(
            Slot::new(2),
            Price::per_kw_hour(0.2),
            [
                (RackId::new(0), Watts::new(20.0)),
                (RackId::new(1), Watts::new(25.0)),
                (RackId::new(2), Watts::new(30.0)),
            ]
            .into_iter()
            .collect(),
        );
        let mut ch = CommsModel::new(0.0, 1.0, 3); // all broadcasts lost
        let events = ch.deliver_broadcasts(&topo, &mut alloc, [TenantId::new(0)]);
        assert_eq!(events.len(), 1);
        assert_eq!(alloc.grant(RackId::new(0)), Watts::ZERO);
        assert_eq!(alloc.grant(RackId::new(1)), Watts::ZERO);
        // Tenant 1 untouched (its broadcast wasn't in the lost set).
        assert_eq!(alloc.grant(RackId::new(2)), Watts::new(30.0));
    }

    #[test]
    #[should_panic(expected = "loss probability in [0,1]")]
    fn bad_probability_rejected() {
        let _ = CommsModel::new(1.5, 0.0, 1);
    }
}
