//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Yields `Some(inner)` three times out of four and `None` otherwise
/// (upstream's `of` uses the same default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
