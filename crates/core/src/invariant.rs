//! Post-clearing invariant checking (Eqns. 1–4 of the paper).
//!
//! The clearing algorithms are *supposed* to emit only feasible,
//! demand-consistent allocations, but faults, degradation paths and
//! future refactors all conspire against "supposed to". This module
//! re-derives the paper's market invariants from first principles and
//! checks a finished allocation against them:
//!
//! 1. **Eq. 1 (demand consistency):** every rack's grant is what its
//!    own demand function asks for at the clearing price — never more —
//!    and no rack is granted spot without having bid.
//! 2. **Eq. 2 (rack headroom):** each grant fits the rack's headroom.
//! 3. **Eq. 3 (PDU spot):** per-PDU grant totals fit the predicted PDU
//!    spot capacity.
//! 4. **Eq. 4 (UPS spot):** the grand total fits the UPS spot capacity.
//!
//! Plus the market sanity condition that the clearing price is
//! non-negative and finite. The checker is pure and allocation-sized —
//! cheap enough to run every slot in debug builds and behind a
//! `--validate` flag in release.

use std::collections::BTreeMap;
use std::fmt;

use crate::allocation::SpotAllocation;
use crate::bid::RackBid;
use crate::constraints::{ConstraintSet, ConstraintViolation};
use spotdc_units::{Price, RackId, Watts};

/// Absolute tolerance (in watts) for demand-consistency comparisons,
/// covering float accumulation across the clearing search.
const DEMAND_TOL: f64 = 1e-6;

/// One violated market invariant.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarketInvariant {
    /// The clearing price was negative, NaN or infinite.
    BadPrice {
        /// The offending price.
        price: Price,
    },
    /// A capacity constraint (Eqns. 2–4, zones, phases) was violated.
    Capacity(ConstraintViolation),
    /// A rack was granted more than its demand function asks for at
    /// the clearing price (Eq. 1).
    GrantExceedsDemand {
        /// The offending rack.
        rack: RackId,
        /// The grant it received.
        grant: Watts,
        /// What its bid demands at the clearing price.
        demand: Watts,
    },
    /// A rack received a positive grant without any admitted bid.
    GrantWithoutBid {
        /// The offending rack.
        rack: RackId,
        /// The grant it received.
        grant: Watts,
    },
}

impl fmt::Display for MarketInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketInvariant::BadPrice { price } => {
                write!(f, "clearing price {price} is negative or non-finite")
            }
            MarketInvariant::Capacity(v) => write!(f, "{v}"),
            MarketInvariant::GrantExceedsDemand {
                rack,
                grant,
                demand,
            } => write!(
                f,
                "{rack} granted {grant} but demands only {demand} at the clearing price"
            ),
            MarketInvariant::GrantWithoutBid { rack, grant } => {
                write!(f, "{rack} granted {grant} without an admitted bid")
            }
        }
    }
}

/// Checks a cleared allocation against the paper's market invariants.
///
/// `bids` are the admitted rack bids the market cleared over (the same
/// slice handed to [`MarketClearing::clear`]); for the per-PDU or
/// MaxPerf paths, pass whatever demand bound applies, or an empty slice
/// together with `check_demand = false` to skip Eq. 1.
///
/// Returns every violation found, empty when the allocation is sound.
///
/// [`MarketClearing::clear`]: crate::clearing::MarketClearing::clear
///
/// # Examples
///
/// ```
/// use spotdc_core::demand::StepBid;
/// use spotdc_core::invariant::check_allocation;
/// use spotdc_core::{ConstraintSet, RackBid, SpotAllocation};
/// use spotdc_power::topology::TopologyBuilder;
/// use spotdc_units::{Price, RackId, Slot, TenantId, Watts};
///
/// let topo = TopologyBuilder::new(Watts::new(200.0))
///     .pdu(Watts::new(200.0))
///     .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
///     .build()?;
/// let constraints = ConstraintSet::new(&topo, vec![Watts::new(50.0)], Watts::new(50.0));
/// let bids = vec![RackBid::new(
///     RackId::new(0),
///     StepBid::new(Watts::new(30.0), Price::per_kw_hour(0.2))?.into(),
/// )];
/// let grants = |w| [(RackId::new(0), Watts::new(w))].into_iter().collect();
/// let sound = SpotAllocation::new(Slot::ZERO, Price::per_kw_hour(0.1), grants(30.0));
/// assert!(check_allocation(&constraints, &sound, &bids, true).is_empty());
///
/// // Fits Eq. 2–4 but grants more than the bid demands — breaks Eq. 1.
/// let oversold = SpotAllocation::new(Slot::ZERO, Price::per_kw_hour(0.1), grants(45.0));
/// assert_eq!(check_allocation(&constraints, &oversold, &bids, true).len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn check_allocation(
    constraints: &ConstraintSet,
    allocation: &SpotAllocation,
    bids: &[RackBid],
    check_demand: bool,
) -> Vec<MarketInvariant> {
    let mut violations = Vec::new();
    let price = allocation.price();
    if !price.per_kw_hour_value().is_finite() || price.per_kw_hour_value() < 0.0 {
        violations.push(MarketInvariant::BadPrice { price });
    }
    if let Err(v) = constraints.check(allocation.grants()) {
        violations.push(MarketInvariant::Capacity(v));
    }
    if check_demand {
        let mut demand_at_price: BTreeMap<RackId, Watts> = BTreeMap::new();
        for bid in bids {
            let entry = demand_at_price.entry(bid.rack()).or_insert(Watts::ZERO);
            *entry += bid.demand().demand_at(price);
        }
        for (rack, grant) in allocation.iter() {
            match demand_at_price.get(&rack) {
                Some(&demand) if grant.value() > demand.value() + DEMAND_TOL => {
                    violations.push(MarketInvariant::GrantExceedsDemand {
                        rack,
                        grant,
                        demand,
                    });
                }
                None if grant > Watts::ZERO => {
                    violations.push(MarketInvariant::GrantWithoutBid { rack, grant });
                }
                _ => {}
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::StepBid;
    use spotdc_power::topology::TopologyBuilder;
    use spotdc_units::{Slot, TenantId};

    fn constraints() -> ConstraintSet {
        let topo = TopologyBuilder::new(Watts::new(300.0))
            .pdu(Watts::new(300.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(50.0))
            .build()
            .unwrap();
        ConstraintSet::new(&topo, vec![Watts::new(60.0)], Watts::new(60.0))
    }

    fn bid(rack: usize, demand: f64, ceiling: f64) -> RackBid {
        RackBid::new(
            RackId::new(rack),
            StepBid::new(Watts::new(demand), Price::per_kw_hour(ceiling))
                .unwrap()
                .into(),
        )
    }

    fn alloc(price: f64, grants: &[(usize, f64)]) -> SpotAllocation {
        SpotAllocation::new(
            Slot::ZERO,
            Price::per_kw_hour(price),
            grants
                .iter()
                .map(|&(r, w)| (RackId::new(r), Watts::new(w)))
                .collect(),
        )
    }

    #[test]
    fn sound_allocation_has_no_violations() {
        let bids = vec![bid(0, 30.0, 0.3), bid(1, 20.0, 0.3)];
        let a = alloc(0.1, &[(0, 30.0), (1, 20.0)]);
        assert!(check_allocation(&constraints(), &a, &bids, true).is_empty());
    }

    #[test]
    fn negative_price_flagged() {
        let a = alloc(-0.1, &[]);
        let found = check_allocation(&constraints(), &a, &[], true);
        assert!(matches!(found[0], MarketInvariant::BadPrice { .. }));
    }

    #[test]
    fn capacity_breach_flagged() {
        // 40 + 30 = 70 > the 60 W PDU/UPS spot bound.
        let bids = vec![bid(0, 40.0, 0.3), bid(1, 30.0, 0.3)];
        let a = alloc(0.1, &[(0, 40.0), (1, 30.0)]);
        let found = check_allocation(&constraints(), &a, &bids, true);
        assert_eq!(found.len(), 1);
        assert!(matches!(found[0], MarketInvariant::Capacity(_)));
    }

    #[test]
    fn grant_above_demand_flagged() {
        // At a price above its ceiling, the bid demands zero.
        let bids = vec![bid(0, 30.0, 0.05)];
        let a = alloc(0.1, &[(0, 30.0)]);
        let found = check_allocation(&constraints(), &a, &bids, true);
        assert!(matches!(
            found[0],
            MarketInvariant::GrantExceedsDemand { .. }
        ));
        assert!(found[0].to_string().contains("demands only"));
    }

    #[test]
    fn grant_without_bid_flagged_only_when_checking_demand() {
        let a = alloc(0.1, &[(1, 10.0)]);
        let found = check_allocation(&constraints(), &a, &[], true);
        assert!(matches!(found[0], MarketInvariant::GrantWithoutBid { .. }));
        assert!(check_allocation(&constraints(), &a, &[], false).is_empty());
    }

    #[test]
    fn cleared_outcomes_always_pass() {
        use crate::clearing::{ClearingConfig, MarketClearing};
        let bids = vec![bid(0, 45.0, 0.25), bid(1, 35.0, 0.15)];
        let clearing = MarketClearing::new(ClearingConfig::default());
        let cs = constraints();
        let outcome = clearing.clear(Slot::ZERO, &bids, &cs);
        assert!(check_allocation(&cs, outcome.allocation(), &bids, true).is_empty());
    }
}
