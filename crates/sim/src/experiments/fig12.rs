//! Fig. 12: long-run cost, performance and spot usage per tenant.
//!
//! The paper's central win-win result over a year-long simulation
//! (scaled here to `ExpConfig::days`):
//!
//! * (a) tenants' total cost barely rises versus `PowerCapped`
//!   (sprinting ≲1 %, opportunistic a few %, both far below the
//!   10–40 % extra reservation that matching performance with
//!   guaranteed capacity would cost);
//! * (b) performance approaches the no-payment `MaxPerf` upper bound;
//! * (c) sprinting tenants use less spot capacity (as % of their
//!   subscription) than opportunistic ones.

use crate::accounting::Billing;
use crate::baselines::Mode;
use crate::experiments::common::{run_modes, ExpConfig, ExpOutput};
use crate::metrics::SimReport;
use crate::report::TextTable;
use crate::scenario::Scenario;

/// Per-tenant long-run comparison.
#[derive(Debug, Clone)]
pub struct TenantComparison {
    /// Tenant alias from Table I.
    pub alias: String,
    /// Whether the tenant is sprinting.
    pub sprinting: bool,
    /// Total cost ratio SpotDC / PowerCapped.
    pub cost_ratio: f64,
    /// Performance ratio SpotDC / PowerCapped over wanting slots.
    pub perf_ratio: f64,
    /// Performance ratio MaxPerf / PowerCapped over wanting slots.
    pub maxperf_ratio: f64,
    /// Max spot usage, % of subscription.
    pub usage_max_pct: f64,
    /// Average spot usage over granted slots, % of subscription.
    pub usage_avg_pct: f64,
}

/// The three runs plus the per-tenant table.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Per-tenant rows.
    pub tenants: Vec<TenantComparison>,
    /// SpotDC run (for further aggregation).
    pub spot: SimReport,
    /// PowerCapped run.
    pub capped: SimReport,
    /// MaxPerf run.
    pub maxperf: SimReport,
    /// The operator's extra-profit percentage.
    pub operator_extra_percent: f64,
}

/// Runs the three modes and assembles the comparison.
#[must_use]
pub fn compute(cfg: &ExpConfig) -> Fig12Result {
    let billing = Billing::paper_defaults();
    let scenario = Scenario::testbed(cfg.seed);
    let specs = scenario.specs.clone();
    let mut reports = run_modes(
        cfg,
        &scenario,
        &[Mode::PowerCapped, Mode::SpotDc, Mode::MaxPerf],
    )
    .into_iter();
    let (capped, spot, maxperf) = (
        reports.next().expect("capped run"),
        reports.next().expect("spot run"),
        reports.next().expect("maxperf run"),
    );
    let tenants = specs
        .iter()
        .enumerate()
        .map(|(i, s)| TenantComparison {
            alias: s.alias.clone(),
            sprinting: s.kind.is_sprinting(),
            cost_ratio: spot.tenant_bill(i, &billing).total()
                / capped.tenant_bill(i, &billing).total().max(1e-12),
            perf_ratio: spot.tenant_perf_ratio_vs(&capped, i).unwrap_or(1.0),
            maxperf_ratio: maxperf.tenant_perf_ratio_vs(&capped, i).unwrap_or(1.0),
            usage_max_pct: spot.tenant_spot_usage_percent(i).0,
            usage_avg_pct: spot.tenant_spot_usage_percent(i).1,
        })
        .collect();
    let operator_extra_percent = spot.profit(&billing).extra_percent();
    Fig12Result {
        tenants,
        spot,
        capped,
        maxperf,
        operator_extra_percent,
    }
}

/// Renders Fig. 12.
#[must_use]
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let r = compute(cfg);
    let mut table = TextTable::new(vec![
        "tenant",
        "type",
        "cost (vs PC)",
        "perf (vs PC)",
        "MaxPerf perf",
        "spot max %",
        "spot avg %",
    ]);
    for t in &r.tenants {
        table.row(vec![
            t.alias.clone(),
            if t.sprinting { "sprint" } else { "opport" }.into(),
            format!("{:+.2}%", 100.0 * (t.cost_ratio - 1.0)),
            format!("{:.2}x", t.perf_ratio),
            format!("{:.2}x", t.maxperf_ratio),
            format!("{:.0}%", t.usage_max_pct),
            format!("{:.0}%", t.usage_avg_pct),
        ]);
    }
    let mut body = table.render();
    let avg_perf: f64 =
        r.tenants.iter().map(|t| t.perf_ratio).sum::<f64>() / r.tenants.len() as f64;
    body.push_str(&format!(
        "\naverage performance: {:.2}x (paper: 1.2-1.8x); operator extra profit: {:+.1}% (paper: +9.7%)\n",
        avg_perf, r.operator_extra_percent
    ));
    ExpOutput {
        id: "fig12".into(),
        title: "Long-run tenant cost, performance and spot usage".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig12Result {
        compute(&ExpConfig {
            days: 3.0,
            ..ExpConfig::quick()
        })
    }

    #[test]
    fn win_win_shape_holds() {
        let r = result();
        assert!(r.operator_extra_percent > 0.0, "operator must gain");
        for t in &r.tenants {
            assert!(t.perf_ratio >= 0.99, "{} lost performance", t.alias);
            assert!(
                t.cost_ratio < 1.15,
                "{} cost rose {:.1}%",
                t.alias,
                100.0 * (t.cost_ratio - 1.0)
            );
        }
    }

    #[test]
    fn sprinting_cost_increase_is_smaller() {
        let r = result();
        let avg = |sprint: bool| -> f64 {
            let v: Vec<f64> = r
                .tenants
                .iter()
                .filter(|t| t.sprinting == sprint)
                .map(|t| t.cost_ratio)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            avg(true) < avg(false),
            "sprinting should pay less in relative terms"
        );
    }

    #[test]
    fn spotdc_close_to_maxperf_for_opportunistic() {
        let r = result();
        for t in r.tenants.iter().filter(|t| !t.sprinting) {
            assert!(
                t.perf_ratio > 0.85 * t.maxperf_ratio,
                "{}: {:.2} vs MaxPerf {:.2}",
                t.alias,
                t.perf_ratio,
                t.maxperf_ratio
            );
        }
    }

    #[test]
    fn sprinting_use_less_spot_in_percentage() {
        let r = result();
        let avg_usage = |sprint: bool| -> f64 {
            let v: Vec<f64> = r
                .tenants
                .iter()
                .filter(|t| t.sprinting == sprint)
                .map(|t| t.usage_avg_pct)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg_usage(true) < avg_usage(false));
    }
}
