//! Value-generation strategies (no shrinking; see the crate docs).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can generate values of a type.
///
/// Unlike upstream proptest, a strategy here is just a sampler: it
/// draws a value directly from a [`TestRng`] with no intermediate
/// value tree (and therefore no shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Boxes a strategy for heterogeneous collections ([`Union`]).
#[must_use]
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (behind [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.next_index(self.options.len());
        self.options[i].sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        // Scale by the next-representable fraction above 1 so `hi`
        // itself is (just barely) reachable.
        lo + rng.next_f64() * (hi - lo) * (1.0 + f64::EPSILON)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let x = (-3.0..7.0f64).sample(&mut r);
            assert!((-3.0..7.0).contains(&x));
            let n = (1u32..8).sample(&mut r);
            assert!((1..8).contains(&n));
            let m = (0..=20).sample(&mut r);
            assert!((0..=20).contains(&m));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut r = rng();
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[(0usize..7).sample(&mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut r = rng();
        let s = (0.0..1.0f64, 1u32..5).prop_map(|(x, n)| x * n as f64);
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert!((0.0..5.0).contains(&v));
        }
    }

    #[test]
    fn union_draws_from_every_option() {
        let mut r = rng();
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn just_yields_the_value() {
        let mut r = rng();
        assert_eq!(Just("x").sample(&mut r), "x");
    }
}
