//! Table I: the testbed configuration.

use crate::experiments::common::{ExpConfig, ExpOutput};
use crate::scenario::Scenario;

/// Renders the testbed configuration table.
#[must_use]
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let scenario = Scenario::testbed(cfg.seed);
    let mut body = scenario.table();
    body.push_str(&format!(
        "\nPDU capacities: {:.0} W / {:.0} W (5% oversubscribed)\nUPS capacity: {:.0} W\n",
        scenario
            .topology
            .pdu_capacity(spotdc_units::PduId::new(0))
            .expect("pdu 0")
            .value(),
        scenario
            .topology
            .pdu_capacity(spotdc_units::PduId::new(1))
            .expect("pdu 1")
            .value(),
        scenario.topology.ups_capacity().value(),
    ));
    ExpOutput {
        id: "table1".into(),
        title: "Testbed configuration".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_capacities() {
        let out = run(&ExpConfig::quick());
        assert!(out.body.contains("UPS capacity"));
        assert!(out.body.contains("S-1"));
    }
}
