//! Dollar-denominated performance cost models (Section IV-C).
//!
//! To bid, tenants convert performance into money. The paper's models:
//!
//! * **Sprinting** (latency SLO): per-job cost `a·d` below the SLO
//!   threshold `d_th`, plus a quadratic penalty `b·(d − d_th)²` above
//!   it — linear degradation normally, sharply growing once the SLO is
//!   violated;
//! * **Opportunistic** (throughput): per-job cost `ρ·T_job`, linear in
//!   job completion time.
//!
//! Both convert to a **cost rate** ($/hour) by multiplying by the job
//! arrival rate, which is the form the gain curves in [`crate::gain`]
//! consume.

use serde::{Deserialize, Serialize};

/// Sprinting-tenant cost model: `c(d) = a·d + b·(d − d_th)²₊` dollars
/// per job at tail latency `d` seconds.
///
/// # Examples
///
/// ```
/// use spotdc_workloads::SprintingCost;
///
/// let c = SprintingCost::new(0.001, 0.5, 0.100);
/// assert!(c.cost_per_job(0.090) < c.cost_per_job(0.150));
/// // Below the SLO the penalty term is zero:
/// assert_eq!(c.cost_per_job(0.050), 0.001 * 0.050);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SprintingCost {
    /// Linear coefficient `a`, $/job per second of latency.
    a: f64,
    /// Quadratic SLO-violation coefficient `b`, $/job per second².
    b: f64,
    /// SLO threshold `d_th`, seconds.
    d_th: f64,
}

impl SprintingCost {
    /// Creates a sprinting cost model.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or non-finite, or `d_th`
    /// is not positive.
    #[must_use]
    pub fn new(a: f64, b: f64, d_th: f64) -> Self {
        assert!(a >= 0.0 && a.is_finite(), "a must be non-negative");
        assert!(b >= 0.0 && b.is_finite(), "b must be non-negative");
        assert!(
            d_th > 0.0 && d_th.is_finite(),
            "slo threshold must be positive"
        );
        SprintingCost { a, b, d_th }
    }

    /// The SLO threshold in seconds.
    #[must_use]
    pub fn slo(&self) -> f64 {
        self.d_th
    }

    /// The linear coefficient `a` ($/job/s).
    #[must_use]
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The quadratic penalty coefficient `b` ($/job/s²).
    #[must_use]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Cost in dollars for one job served at tail latency `d` seconds.
    #[must_use]
    pub fn cost_per_job(&self, d: f64) -> f64 {
        let over = (d - self.d_th).max(0.0);
        self.a * d + self.b * over * over
    }

    /// Cost rate in $/hour at tail latency `d` with jobs arriving at
    /// `lambda` req/s.
    #[must_use]
    pub fn cost_rate(&self, d: f64, lambda: f64) -> f64 {
        self.cost_per_job(d) * lambda.max(0.0) * 3600.0
    }
}

/// Opportunistic-tenant cost model: `c = ρ·T_job` dollars per job of
/// completion time `T_job` seconds.
///
/// With jobs of `work_per_job` units arriving at `jobs_per_hour`, the
/// cost rate at throughput `θ` is
/// `jobs_per_hour · ρ · work_per_job / θ` — convex and decreasing in
/// throughput, so every extra watt is worth a bit less than the last.
///
/// # Examples
///
/// ```
/// use spotdc_workloads::OpportunisticCost;
///
/// let c = OpportunisticCost::new(0.0001, 3000.0, 2.0);
/// assert!(c.cost_rate_at_throughput(40.0) < c.cost_rate_at_throughput(30.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpportunisticCost {
    /// Scaling parameter `ρ`, $/job per second of completion time.
    rho: f64,
    /// Work units per job.
    work_per_job: f64,
    /// Job arrival rate, jobs/hour.
    jobs_per_hour: f64,
}

impl OpportunisticCost {
    /// Creates an opportunistic cost model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative/non-finite or
    /// `work_per_job` is not positive.
    #[must_use]
    pub fn new(rho: f64, work_per_job: f64, jobs_per_hour: f64) -> Self {
        assert!(rho >= 0.0 && rho.is_finite(), "rho must be non-negative");
        assert!(
            work_per_job > 0.0 && work_per_job.is_finite(),
            "work per job must be positive"
        );
        assert!(
            jobs_per_hour >= 0.0 && jobs_per_hour.is_finite(),
            "job rate must be non-negative"
        );
        OpportunisticCost {
            rho,
            work_per_job,
            jobs_per_hour,
        }
    }

    /// The scaling parameter `ρ`.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Work units per job.
    #[must_use]
    pub fn work_per_job(&self) -> f64 {
        self.work_per_job
    }

    /// Job arrival rate, jobs/hour.
    #[must_use]
    pub fn jobs_per_hour(&self) -> f64 {
        self.jobs_per_hour
    }

    /// Cost in dollars for one job completing in `t_job` seconds.
    #[must_use]
    pub fn cost_per_job(&self, t_job: f64) -> f64 {
        self.rho * t_job.max(0.0)
    }

    /// Cost rate in $/hour when processing at `throughput` work
    /// units/s. Returns `f64::INFINITY` at zero throughput (the backlog
    /// never drains).
    #[must_use]
    pub fn cost_rate_at_throughput(&self, throughput: f64) -> f64 {
        if throughput <= 0.0 {
            return f64::INFINITY;
        }
        let t_job = self.work_per_job / throughput;
        self.cost_per_job(t_job) * self.jobs_per_hour
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprinting_linear_below_slo() {
        let c = SprintingCost::new(0.01, 100.0, 0.1);
        assert!((c.cost_per_job(0.05) - 0.0005).abs() < 1e-12);
        assert!((c.cost_per_job(0.1) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn sprinting_quadratic_above_slo() {
        let c = SprintingCost::new(0.01, 100.0, 0.1);
        // at d = 0.2: 0.01*0.2 + 100*(0.1)^2 = 0.002 + 1.0
        assert!((c.cost_per_job(0.2) - 1.002).abs() < 1e-12);
    }

    #[test]
    fn sprinting_cost_continuous_at_slo() {
        let c = SprintingCost::new(0.01, 100.0, 0.1);
        let below = c.cost_per_job(0.1 - 1e-9);
        let above = c.cost_per_job(0.1 + 1e-9);
        assert!((below - above).abs() < 1e-6);
    }

    #[test]
    fn sprinting_penalty_dominates_for_bad_violations() {
        let c = SprintingCost::new(0.01, 100.0, 0.1);
        // Doubling the excess latency roughly quadruples the penalty.
        let p1 = c.cost_per_job(0.2) - c.cost_per_job(0.1);
        let p2 = c.cost_per_job(0.3) - c.cost_per_job(0.1);
        assert!(p2 > 3.5 * p1);
    }

    #[test]
    fn sprinting_cost_rate_scales_with_load() {
        let c = SprintingCost::new(0.01, 100.0, 0.1);
        let r1 = c.cost_rate(0.08, 50.0);
        let r2 = c.cost_rate(0.08, 100.0);
        assert!((r2 - 2.0 * r1).abs() < 1e-9);
        assert_eq!(c.cost_rate(0.08, -5.0), 0.0);
    }

    #[test]
    fn opportunistic_cost_inverse_in_throughput() {
        let c = OpportunisticCost::new(0.001, 1000.0, 4.0);
        let r10 = c.cost_rate_at_throughput(10.0);
        let r20 = c.cost_rate_at_throughput(20.0);
        assert!((r10 - 2.0 * r20).abs() < 1e-9);
    }

    #[test]
    fn opportunistic_zero_throughput_is_infinite() {
        let c = OpportunisticCost::new(0.001, 1000.0, 4.0);
        assert!(c.cost_rate_at_throughput(0.0).is_infinite());
    }

    #[test]
    fn opportunistic_per_job_linear_in_time() {
        let c = OpportunisticCost::new(0.002, 100.0, 1.0);
        assert!((c.cost_per_job(50.0) - 0.1).abs() < 1e-12);
        assert_eq!(c.cost_per_job(-1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "slo threshold must be positive")]
    fn bad_slo_rejected() {
        let _ = SprintingCost::new(0.1, 0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "work per job must be positive")]
    fn bad_work_rejected() {
        let _ = OpportunisticCost::new(0.1, 0.0, 1.0);
    }
}
