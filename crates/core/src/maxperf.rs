//! The `MaxPerf` baseline: owner-operated optimal allocation.
//!
//! The paper's upper-bound comparator (Section V-B) assumes the
//! operator controls every server, knows every tenant's performance
//! gain from extra power, and allocates spot capacity to maximize the
//! *total* gain with no payments — the power-routing setting of \[9\].
//!
//! With concave per-rack gain curves and the nested rack ⊆ PDU ⊆ UPS
//! capacity structure, the greedy that repeatedly feeds the hungriest
//! marginal watt is optimal: process all racks' gain-curve segments in
//! decreasing slope order, granting each as much of its segment as the
//! rack's remaining headroom, its PDU's remaining spot capacity and the
//! UPS's remaining spot capacity allow.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use spotdc_units::{RackId, Watts};

use crate::constraints::ConstraintSet;

/// A concave piece-wise linear gain curve for one rack: the $/hour of
/// performance gain as a function of spot watts granted.
///
/// # Examples
///
/// ```
/// use spotdc_core::ConcaveGain;
///
/// // 0→20 W at $0.002/W/h, then 20→50 W at $0.0005/W/h.
/// let g = ConcaveGain::new(vec![(20.0, 0.002), (30.0, 0.0005)])?;
/// assert_eq!(g.max_watts(), 50.0);
/// assert!((g.gain_at(25.0) - (20.0 * 0.002 + 5.0 * 0.0005)).abs() < 1e-12);
/// # Ok::<(), spotdc_core::maxperf::GainError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcaveGain {
    /// `(width_watts, slope_usd_per_watt_hour)` segments with strictly
    /// decreasing slopes.
    segments: Vec<(f64, f64)>,
}

/// An invalid gain curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GainError(String);

impl std::fmt::Display for GainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid gain curve: {}", self.0)
    }
}

impl std::error::Error for GainError {}

impl ConcaveGain {
    /// Creates a curve from `(segment width in watts, slope in $/W/h)`
    /// pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GainError`] if any width/slope is negative or
    /// non-finite, or slopes are not non-increasing (concavity).
    pub fn new(segments: Vec<(f64, f64)>) -> Result<Self, GainError> {
        for &(w, s) in &segments {
            if !w.is_finite() || w < 0.0 {
                return Err(GainError("segment widths must be non-negative".into()));
            }
            if !s.is_finite() || s < 0.0 {
                return Err(GainError("slopes must be non-negative".into()));
            }
        }
        for pair in segments.windows(2) {
            if pair[1].1 > pair[0].1 + 1e-12 {
                return Err(GainError("slopes must be non-increasing".into()));
            }
        }
        Ok(ConcaveGain { segments })
    }

    /// Builds a curve from sampled `(watts, gain)` points of a concave
    /// function (e.g. a concave envelope from `spotdc-workloads`):
    /// consecutive point pairs become segments. Slopes that increase by
    /// tiny numeric noise are flattened.
    ///
    /// # Errors
    ///
    /// Returns [`GainError`] if points are not sorted/finite.
    pub fn from_points(points: &[(f64, f64)]) -> Result<Self, GainError> {
        let mut segments = Vec::with_capacity(points.len().saturating_sub(1));
        let mut last_slope = f64::INFINITY;
        for pair in points.windows(2) {
            let width = pair[1].0 - pair[0].0;
            if !width.is_finite() || width < 0.0 {
                return Err(GainError("points must be sorted by watts".into()));
            }
            if width == 0.0 {
                continue;
            }
            let slope = ((pair[1].1 - pair[0].1) / width).max(0.0);
            let slope = slope.min(last_slope);
            last_slope = slope;
            segments.push((width, slope));
        }
        ConcaveGain::new(segments)
    }

    /// The curve's segments.
    #[must_use]
    pub fn segments(&self) -> &[(f64, f64)] {
        &self.segments
    }

    /// Total watts the curve covers.
    #[must_use]
    pub fn max_watts(&self) -> f64 {
        self.segments.iter().map(|s| s.0).sum()
    }

    /// Gain ($/hour) at `watts` of spot capacity.
    #[must_use]
    pub fn gain_at(&self, watts: f64) -> f64 {
        let mut remaining = watts.max(0.0);
        let mut gain = 0.0;
        for &(w, s) in &self.segments {
            let take = remaining.min(w);
            gain += take * s;
            remaining -= take;
            if remaining <= 0.0 {
                break;
            }
        }
        gain
    }
}

/// Allocates spot capacity to maximize total gain across `gains`,
/// subject to `constraints` — the `MaxPerf` baseline.
///
/// Racks without a gain curve receive nothing. The returned grants are
/// always feasible.
///
/// # Examples
///
/// ```
/// use spotdc_core::{max_perf_allocate, ConcaveGain, ConstraintSet};
/// use spotdc_power::topology::TopologyBuilder;
/// use spotdc_units::{RackId, TenantId, Watts};
///
/// let topo = TopologyBuilder::new(Watts::new(300.0))
///     .pdu(Watts::new(200.0))
///     .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
///     .rack(TenantId::new(1), Watts::new(100.0), Watts::new(50.0))
///     .build()?;
/// let cs = ConstraintSet::new(&topo, vec![Watts::new(60.0)], Watts::new(60.0));
/// let gains = [
///     (RackId::new(0), ConcaveGain::new(vec![(50.0, 0.002)])?),
///     (RackId::new(1), ConcaveGain::new(vec![(50.0, 0.001)])?),
/// ].into_iter().collect();
/// let grants = max_perf_allocate(&gains, &cs);
/// // Hungrier rack 0 is saturated first; rack 1 gets the remainder.
/// assert_eq!(grants[&RackId::new(0)], Watts::new(50.0));
/// assert_eq!(grants[&RackId::new(1)], Watts::new(10.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn max_perf_allocate(
    gains: &BTreeMap<RackId, ConcaveGain>,
    constraints: &ConstraintSet,
) -> BTreeMap<RackId, Watts> {
    // Flatten all segments, tagged by rack, and sort by slope desc.
    struct Piece {
        rack: RackId,
        width: f64,
        slope: f64,
    }
    let mut pieces: Vec<Piece> = Vec::new();
    for (&rack, curve) in gains {
        for &(width, slope) in curve.segments() {
            if width > 0.0 && slope > 0.0 {
                pieces.push(Piece { rack, width, slope });
            }
        }
    }
    pieces.sort_by(|a, b| b.slope.partial_cmp(&a.slope).expect("finite slopes"));

    let mut grants: BTreeMap<RackId, Watts> = gains.keys().map(|&r| (r, Watts::ZERO)).collect();
    let mut pdu_left: Vec<Watts> = (0..)
        .map(spotdc_units::PduId::new)
        .take_while(|p| p.index() < constraints_pdu_count(constraints))
        .map(|p| constraints.pdu_spot(p))
        .collect();
    let mut ups_left = constraints.ups_spot();

    for piece in pieces {
        let Some(pdu) = constraints.pdu_of(piece.rack) else {
            continue;
        };
        let rack_left = constraints.rack_headroom(piece.rack) - grants[&piece.rack];
        let take = Watts::new(piece.width)
            .min(rack_left)
            .min(pdu_left[pdu.index()])
            .min(ups_left)
            .clamp_non_negative();
        if take > Watts::ZERO {
            *grants.get_mut(&piece.rack).expect("initialized") += take;
            pdu_left[pdu.index()] -= take;
            ups_left -= take;
        }
    }
    grants
}

/// Number of PDUs a constraint set covers (probe until zero-capacity
/// PDUs would repeat forever — the set stores them densely).
fn constraints_pdu_count(constraints: &ConstraintSet) -> usize {
    // ConstraintSet is dense over PDU ids; racks carry the mapping.
    (0..constraints.rack_count())
        .filter_map(|i| constraints.pdu_of(RackId::new(i)))
        .map(|p| p.index() + 1)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotdc_power::topology::TopologyBuilder;
    use spotdc_units::TenantId;

    fn constraints(pdu0: f64, pdu1: f64, ups: f64) -> ConstraintSet {
        let topo = TopologyBuilder::new(Watts::new(1000.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(50.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(2), Watts::new(100.0), Watts::new(50.0))
            .build()
            .unwrap();
        ConstraintSet::new(
            &topo,
            vec![Watts::new(pdu0), Watts::new(pdu1)],
            Watts::new(ups),
        )
    }

    fn gain(segs: &[(f64, f64)]) -> ConcaveGain {
        ConcaveGain::new(segs.to_vec()).unwrap()
    }

    #[test]
    fn gain_curve_evaluation() {
        let g = gain(&[(10.0, 1.0), (10.0, 0.5)]);
        assert_eq!(g.gain_at(0.0), 0.0);
        assert_eq!(g.gain_at(5.0), 5.0);
        assert_eq!(g.gain_at(15.0), 12.5);
        assert_eq!(g.gain_at(100.0), 15.0); // saturates
        assert_eq!(g.max_watts(), 20.0);
    }

    #[test]
    fn non_concave_rejected() {
        assert!(ConcaveGain::new(vec![(10.0, 0.5), (10.0, 1.0)]).is_err());
        assert!(ConcaveGain::new(vec![(-1.0, 0.5)]).is_err());
        assert!(ConcaveGain::new(vec![(1.0, -0.5)]).is_err());
    }

    #[test]
    fn from_points_builds_segments() {
        let g = ConcaveGain::from_points(&[(0.0, 0.0), (10.0, 20.0), (30.0, 30.0)]).unwrap();
        assert_eq!(g.segments().len(), 2);
        assert!((g.gain_at(10.0) - 20.0).abs() < 1e-12);
        assert!((g.gain_at(30.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_prefers_higher_marginal_gain() {
        let cs = constraints(60.0, 500.0, 1000.0);
        let gains = [
            (RackId::new(0), gain(&[(50.0, 0.003)])),
            (RackId::new(1), gain(&[(50.0, 0.001)])),
        ]
        .into_iter()
        .collect();
        let grants = max_perf_allocate(&gains, &cs);
        assert_eq!(grants[&RackId::new(0)], Watts::new(50.0));
        assert_eq!(grants[&RackId::new(1)], Watts::new(10.0));
    }

    #[test]
    fn interleaves_segments_across_racks() {
        // Rack 0: steep then shallow; rack 1: medium. Optimal order:
        // r0-seg1 (0.004), r1-seg (0.002), r0-seg2 (0.001).
        let cs = constraints(45.0, 500.0, 1000.0);
        let gains = [
            (RackId::new(0), gain(&[(20.0, 0.004), (20.0, 0.001)])),
            (RackId::new(1), gain(&[(20.0, 0.002)])),
        ]
        .into_iter()
        .collect();
        let grants = max_perf_allocate(&gains, &cs);
        assert_eq!(grants[&RackId::new(0)], Watts::new(25.0)); // 20 + 5
        assert_eq!(grants[&RackId::new(1)], Watts::new(20.0));
    }

    #[test]
    fn respects_all_constraint_levels() {
        let cs = constraints(30.0, 20.0, 40.0);
        let gains = [
            (RackId::new(0), gain(&[(50.0, 0.005)])),
            (RackId::new(1), gain(&[(50.0, 0.004)])),
            (RackId::new(2), gain(&[(50.0, 0.003)])),
        ]
        .into_iter()
        .collect();
        let grants = max_perf_allocate(&gains, &cs);
        assert!(cs.is_feasible(&grants), "grants {grants:?}");
        // UPS (40) binds before PDU sums (50): total must be 40.
        let total: Watts = grants.values().copied().sum();
        assert!(total.approx_eq(Watts::new(40.0), 1e-9));
        // And the steepest rack is served first.
        assert_eq!(grants[&RackId::new(0)], Watts::new(30.0));
    }

    #[test]
    fn matches_brute_force_on_small_instance() {
        // Two racks on one PDU (30 W spot), concave 2-segment curves.
        let cs = constraints(30.0, 0.0, 30.0);
        let g0 = gain(&[(15.0, 0.004), (25.0, 0.002)]);
        let g1 = gain(&[(10.0, 0.005), (30.0, 0.001)]);
        let gains = [(RackId::new(0), g0.clone()), (RackId::new(1), g1.clone())]
            .into_iter()
            .collect();
        let grants = max_perf_allocate(&gains, &cs);
        let greedy_total = g0.gain_at(grants[&RackId::new(0)].value())
            + g1.gain_at(grants[&RackId::new(1)].value());
        // Brute-force over integer splits of the 30 W.
        let mut best = 0.0f64;
        for a in 0..=30 {
            let b = 30 - a;
            let v = g0.gain_at(a as f64) + g1.gain_at(b as f64);
            best = best.max(v);
        }
        assert!(
            greedy_total >= best - 1e-9,
            "greedy {greedy_total} < brute force {best}"
        );
    }

    #[test]
    fn empty_gains_yield_empty_grants() {
        let cs = constraints(30.0, 30.0, 60.0);
        let grants = max_perf_allocate(&BTreeMap::new(), &cs);
        assert!(grants.is_empty());
    }

    #[test]
    fn zero_slope_segments_get_nothing() {
        let cs = constraints(30.0, 30.0, 60.0);
        let gains = [(RackId::new(0), gain(&[(50.0, 0.0)]))]
            .into_iter()
            .collect();
        let grants = max_perf_allocate(&gains, &cs);
        assert_eq!(grants[&RackId::new(0)], Watts::ZERO);
    }
}
