//! Tenant agents and spot-capacity bidding strategies for SpotDC.
//!
//! The operator's market ([`spotdc_core`]) is deliberately agnostic
//! about *how* tenants bid — "bidding is at the discretion of tenants".
//! This crate supplies the tenant side used throughout the paper's
//! evaluation:
//!
//! * [`model`] — a tenant's workload + cost model pairing (*sprinting*
//!   = interactive with an SLO; *opportunistic* = batch throughput) and
//!   the per-slot performance/billing arithmetic;
//! * [`strategy`] — the bidding strategies of Sections III-B3 and V:
//!   the simple needed-power bid, the elastic [`LinearBid`]-producing
//!   strategy built on gain curves, the all-or-nothing `StepBid`
//!   variant, the complete-curve `FullBid` variant, and the
//!   price-predicting strategy of Fig. 16;
//! * [`agent`] — a [`TenantAgent`] tying rack, reservation, model and
//!   strategy together for the simulation loop;
//! * [`multirack`] — the bundled multi-rack bidding guideline of
//!   Fig. 4 (affine-joined demand vectors sharing one price range);
//! * [`equilibrium`] — best-response bidding dynamics, a case study of
//!   the equilibrium question the paper leaves open.
//!
//! [`LinearBid`]: spotdc_core::LinearBid
//!
//! ```
//! use spotdc_tenants::{Strategy, TenantAgent};
//! use spotdc_tenants::model::WorkloadModel;
//! use spotdc_units::{Price, RackId, TenantId, Watts};
//!
//! let mut search = TenantAgent::new(
//!     TenantId::new(0),
//!     RackId::new(0),
//!     Watts::new(145.0),
//!     Watts::new(72.5),
//!     WorkloadModel::search(),
//!     Strategy::elastic(Price::per_kw_hour(0.05), Price::per_kw_hour(0.5)),
//! );
//! search.observe(1.0); // peak traffic
//! assert!(search.wants_spot());
//! assert!(search.make_bid().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod equilibrium;
pub mod model;
pub mod multirack;
pub mod strategy;

pub use agent::{Performance, SlotOutcome, TenantAgent};
pub use equilibrium::{best_response_dynamics, BestResponseConfig, EquilibriumResult};
pub use model::WorkloadModel;
pub use multirack::bundle_bid;
pub use strategy::{BidContext, Strategy};
