//! Deterministic, seedable random samplers.
//!
//! Every trace generator in this crate draws from a [`Sampler`]: a thin
//! wrapper over a seeded [`rand::rngs::StdRng`] adding the handful of
//! distributions the traces need (normal via Box–Muller, lognormal,
//! exponential, Pareto). Implemented here rather than pulling
//! `rand_distr`, keeping the dependency set to the pre-approved crates
//! (see DESIGN.md §3).
//!
//! Determinism matters: every experiment in the paper reproduction is
//! seeded, so two runs of a figure produce identical numbers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random sampler with the distributions used by the traces.
///
/// # Examples
///
/// ```
/// use spotdc_traces::Sampler;
///
/// let mut a = Sampler::seeded(42);
/// let mut b = Sampler::seeded(42);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0)); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct Sampler {
    rng: StdRng,
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

impl Sampler {
    /// Creates a sampler from a 64-bit seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Sampler {
            rng: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (empty range) via the underlying RNG.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        if lo == hi {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn flip(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        self.rng.gen_range(0..n)
    }

    /// A standard normal draw via the Box–Muller transform (polar
    /// rejection-free form; the spare variate is cached).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Guard against u1 == 0 (ln(0) = -inf).
        let u1: f64 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "standard deviation must be non-negative");
        mean + sigma * self.standard_normal()
    }

    /// A lognormal draw: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// An exponential draw with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u: f64 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// A Pareto draw with scale `x_min > 0` and shape `alpha > 0`
    /// (heavy-tailed; mean exists only for `alpha > 1`).
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0, "scale must be positive");
        assert!(alpha > 0.0, "shape must be positive");
        let u: f64 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        x_min / u.powf(1.0 / alpha)
    }

    /// A geometric draw: number of Bernoulli(`p`) failures before the
    /// first success. Returns 0 for `p ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics unless `p > 0`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0, "success probability must be positive");
        if p >= 1.0 {
            return 0;
        }
        let u: f64 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Sampler::seeded(7);
        let mut b = Sampler::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        let mut c = Sampler::seeded(8);
        assert_ne!(a.uniform(), c.uniform());
    }

    #[test]
    fn normal_moments_close() {
        let mut s = Sampler::seeded(1);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| s.normal(3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut s = Sampler::seeded(2);
        let n = 200_000;
        let mean = (0..n).map(|_| s.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut s = Sampler::seeded(3);
        for _ in 0..10_000 {
            assert!(s.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn pareto_mean_close_for_alpha_above_one() {
        let mut s = Sampler::seeded(4);
        let n = 400_000;
        let mean = (0..n).map(|_| s.pareto(1.0, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 1.5).abs() < 0.03, "mean {mean}"); // α/(α−1)
    }

    #[test]
    fn flip_frequency_close() {
        let mut s = Sampler::seeded(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| s.flip(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn geometric_mean_close() {
        let mut s = Sampler::seeded(6);
        let n = 100_000;
        let mean = (0..n).map(|_| s.geometric(0.25) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}"); // (1-p)/p
    }

    #[test]
    fn uniform_in_bounds() {
        let mut s = Sampler::seeded(9);
        for _ in 0..10_000 {
            let x = s.uniform_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
        assert_eq!(s.uniform_in(3.0, 3.0), 3.0);
    }

    #[test]
    fn index_in_range() {
        let mut s = Sampler::seeded(10);
        for _ in 0..1000 {
            assert!(s.index(7) < 7);
        }
    }
}
