//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length distribution for [`vec`] (subset of upstream's `SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<Range<i32>> for SizeRange {
    fn from(r: Range<i32>) -> Self {
        assert!(0 <= r.start && r.start < r.end, "invalid size range");
        SizeRange {
            lo: r.start as usize,
            hi: (r.end - 1) as usize,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.next_index(span.max(1)).min(span - 1);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::deterministic("collection-tests");
        let s = vec(0.0..1.0f64, 2..6);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn exact_length() {
        let mut rng = TestRng::deterministic("collection-exact");
        let s = vec(0u32..9, 30);
        assert_eq!(s.sample(&mut rng).len(), 30);
    }

    #[test]
    fn nested_tuples() {
        let mut rng = TestRng::deterministic("collection-tuples");
        let s = vec((1.0..500.0f64, 0.0..200.0f64), 1..30);
        let v = s.sample(&mut rng);
        assert!(!v.is_empty() && v.len() < 30);
    }
}
