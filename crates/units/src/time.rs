//! Slotted time.
//!
//! SpotDC is a time-slotted market: every spot-capacity allocation is
//! effective for exactly one slot (1–5 minutes in the paper). [`Slot`]
//! indexes slots; [`SlotDuration`] is the length of one slot and the
//! bridge between per-slot and per-hour quantities.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::OnceLock;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// The index of one market time slot.
///
/// # Examples
///
/// ```
/// use spotdc_units::Slot;
///
/// let t = Slot::new(5);
/// assert_eq!(t.next(), Slot::new(6));
/// assert_eq!(t.next() - t, 1);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Slot(u64);

impl Slot {
    /// The first slot.
    pub const ZERO: Slot = Slot(0);

    /// Creates a slot index.
    #[must_use]
    pub const fn new(index: u64) -> Self {
        Slot(index)
    }

    /// The numeric index of this slot.
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The slot after this one.
    #[must_use]
    pub const fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// The slot before this one, or `None` at slot zero.
    #[must_use]
    pub const fn prev(self) -> Option<Slot> {
        match self.0 {
            0 => None,
            n => Some(Slot(n - 1)),
        }
    }

    /// Iterates over `count` slots starting at `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use spotdc_units::Slot;
    /// let v: Vec<_> = Slot::ZERO.take(3).collect();
    /// assert_eq!(v, [Slot::new(0), Slot::new(1), Slot::new(2)]);
    /// ```
    pub fn take(self, count: u64) -> impl Iterator<Item = Slot> {
        (self.0..self.0 + count).map(Slot)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

impl Add<u64> for Slot {
    type Output = Slot;
    fn add(self, rhs: u64) -> Slot {
        Slot(self.0 + rhs)
    }
}

impl AddAssign<u64> for Slot {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Slot {
    /// Number of slots between two slot indices.
    type Output = u64;
    fn sub(self, rhs: Slot) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Slot {
    fn from(index: u64) -> Self {
        Slot(index)
    }
}

/// The wall-clock length of one market slot.
///
/// The paper uses 1–5 minute slots; the testbed experiment uses 2-minute
/// slots (20 minutes / 10 slots). Durations convert per-slot quantities
/// to per-hour ones (prices, energy) and size simulated horizons.
///
/// # Examples
///
/// ```
/// use spotdc_units::SlotDuration;
///
/// let slot = SlotDuration::from_minutes(2.0);
/// assert_eq!(slot.seconds(), 120.0);
/// assert_eq!(slot.slots_per_hour(), 30.0);
/// assert_eq!(SlotDuration::from_secs(60).slots_per_day(), 1440.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SlotDuration(f64);

impl SlotDuration {
    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not a positive finite number — a zero-length
    /// slot would make every per-hour conversion divide by zero.
    #[must_use]
    pub fn from_secs(secs: u64) -> Self {
        assert!(secs > 0, "slot duration must be positive");
        SlotDuration(secs as f64)
    }

    /// Creates a duration from (possibly fractional) minutes.
    ///
    /// # Panics
    ///
    /// Panics if `minutes` is not a positive finite number.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        assert!(
            minutes.is_finite() && minutes > 0.0,
            "slot duration must be positive and finite"
        );
        SlotDuration(minutes * 60.0)
    }

    /// The duration in seconds.
    #[must_use]
    pub const fn seconds(self) -> f64 {
        self.0
    }

    /// The duration in minutes.
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// The duration in hours.
    #[must_use]
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// How many of these slots fit in one hour.
    #[must_use]
    pub fn slots_per_hour(self) -> f64 {
        3600.0 / self.0
    }

    /// How many of these slots fit in one day.
    #[must_use]
    pub fn slots_per_day(self) -> f64 {
        86_400.0 / self.0
    }

    /// The number of whole slots needed to cover `days` days, rounded up.
    ///
    /// # Examples
    ///
    /// ```
    /// # use spotdc_units::SlotDuration;
    /// assert_eq!(SlotDuration::from_minutes(2.0).slots_for_days(1.0), 720);
    /// ```
    #[must_use]
    pub fn slots_for_days(self, days: f64) -> u64 {
        (days * self.slots_per_day()).ceil() as u64
    }
}

impl Default for SlotDuration {
    /// Two-minute slots, the testbed setting in the paper.
    fn default() -> Self {
        SlotDuration::from_secs(120)
    }
}

impl fmt::Display for SlotDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s slot", self.0)
    }
}

/// A monotonic timestamp in nanoseconds since the process-wide anchor.
///
/// The anchor is the first call to [`MonotonicNanos::now`] in the
/// process, so values are only comparable within one process — they are
/// meant for telemetry (event ordering, span durations), not wall-clock
/// time. Backed by [`Instant`], so the clock never goes backwards.
///
/// # Examples
///
/// ```
/// use spotdc_units::MonotonicNanos;
///
/// let a = MonotonicNanos::now();
/// let b = MonotonicNanos::now();
/// assert!(b >= a);
/// assert_eq!(b.saturating_nanos_since(a), b.as_nanos() - a.as_nanos());
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct MonotonicNanos(u64);

impl MonotonicNanos {
    /// The current monotonic time.
    #[must_use]
    pub fn now() -> Self {
        static ANCHOR: OnceLock<Instant> = OnceLock::new();
        let anchor = *ANCHOR.get_or_init(Instant::now);
        // u64 nanoseconds cover ~584 years of process uptime.
        MonotonicNanos(anchor.elapsed().as_nanos() as u64)
    }

    /// Reconstructs a timestamp from a raw nanosecond count (e.g. one
    /// parsed back out of a telemetry log).
    #[must_use]
    pub const fn from_raw(nanos: u64) -> Self {
        MonotonicNanos(nanos)
    }

    /// Nanoseconds since the process anchor.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Nanoseconds elapsed since `earlier`, or zero if `earlier` is later.
    #[must_use]
    pub const fn saturating_nanos_since(self, earlier: MonotonicNanos) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Seconds elapsed since `earlier` (zero if `earlier` is later).
    #[must_use]
    pub fn secs_since(self, earlier: MonotonicNanos) -> f64 {
        self.saturating_nanos_since(earlier) as f64 * 1e-9
    }
}

impl fmt::Display for MonotonicNanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{}ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_ordering_and_arithmetic() {
        let a = Slot::new(3);
        assert_eq!(a.next(), Slot::new(4));
        assert_eq!(a.prev(), Some(Slot::new(2)));
        assert_eq!(Slot::ZERO.prev(), None);
        assert_eq!(a + 7, Slot::new(10));
        assert_eq!(Slot::new(10) - a, 7);
        let mut b = a;
        b += 2;
        assert_eq!(b, Slot::new(5));
    }

    #[test]
    fn slot_take_iterates_consecutively() {
        let v: Vec<u64> = Slot::new(10).take(4).map(Slot::index).collect();
        assert_eq!(v, [10, 11, 12, 13]);
    }

    #[test]
    fn duration_conversions() {
        let d = SlotDuration::from_secs(300);
        assert_eq!(d.minutes(), 5.0);
        assert!((d.hours() - 5.0 / 60.0).abs() < 1e-12);
        assert_eq!(d.slots_per_hour(), 12.0);
        assert_eq!(d.slots_per_day(), 288.0);
    }

    #[test]
    fn slots_for_days_rounds_up() {
        let d = SlotDuration::from_secs(7_000); // not a divisor of a day
        let slots = d.slots_for_days(1.0);
        assert!(slots as f64 * d.seconds() >= 86_400.0);
        assert!((slots - 1) as f64 * d.seconds() < 86_400.0);
    }

    #[test]
    fn default_is_testbed_two_minutes() {
        assert_eq!(SlotDuration::default().seconds(), 120.0);
    }

    #[test]
    fn monotonic_never_goes_backwards() {
        let mut prev = MonotonicNanos::now();
        for _ in 0..100 {
            let next = MonotonicNanos::now();
            assert!(next >= prev);
            prev = next;
        }
    }

    #[test]
    fn monotonic_difference_saturates() {
        let early = MonotonicNanos::from_raw(10);
        let late = MonotonicNanos::from_raw(250);
        assert_eq!(late.saturating_nanos_since(early), 240);
        assert_eq!(early.saturating_nanos_since(late), 0);
        assert!((late.secs_since(early) - 240e-9).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "slot duration must be positive")]
    fn zero_duration_rejected() {
        let _ = SlotDuration::from_secs(0);
    }
}
