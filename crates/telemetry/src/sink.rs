//! Event sinks: where serialized telemetry events go.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;

/// A destination for structured telemetry events.
///
/// Implementations must be cheap enough to sit on the per-slot path and
/// thread-safe (the simulator is single-threaded today, but parameter
/// sweeps run engines on worker threads against one process-global
/// sink).
pub trait EventSink: Send + Sync {
    /// Records one event.
    fn emit(&self, event: &Event);

    /// Records one event carrying the emitting thread's run-id tag
    /// (see `run_scope` in the crate root). The default drops the tag
    /// and forwards to [`EventSink::emit`]; sinks with an attributable
    /// wire format ([`FileSink`]) override it.
    fn emit_tagged(&self, run: Option<&str>, event: &Event) {
        let _ = run;
        self.emit(event);
    }

    /// Flushes any buffered output. The default is a no-op.
    fn flush(&self) {}
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Buffers events in memory; tests and the simulation engine read them
/// back with [`VecSink::snapshot`] or [`VecSink::take`].
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<Event>>,
}

impl VecSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Clones out the events recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().clone()
    }

    /// Removes and returns the events recorded so far.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.lock())
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl EventSink for VecSink {
    fn emit(&self, event: &Event) {
        self.lock().push(event.clone());
    }
}

/// A bounded ring buffer of the most recent events, with their run
/// tags. The storage half of the flight recorder (`spotdc-obs`): cheap
/// enough to receive *every* event un-sampled, so the last `capacity`
/// events are always available as local causal context when an
/// emergency needs a black-box dump.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<(Option<String>, Event)>>,
}

impl RingSink {
    /// Creates a ring keeping the last `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<(Option<String>, Event)>> {
        self.buf.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered events (at most `capacity`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Clones out the buffered `(run, event)` pairs, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(Option<String>, Event)> {
        self.lock().iter().cloned().collect()
    }

    /// Drops every buffered event.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

impl EventSink for RingSink {
    fn emit(&self, event: &Event) {
        self.emit_tagged(None, event);
    }

    fn emit_tagged(&self, run: Option<&str>, event: &Event) {
        let mut buf = self.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back((run.map(str::to_owned), event.clone()));
    }
}

/// Appends events as JSON lines to a file (the `telemetry.jsonl`
/// artifact the repro binary ships).
///
/// Writes are buffered ([`BufWriter`]) and flushed on drop. I/O errors
/// never take the simulation down, but they are not swallowed either:
/// the sink counts them and keeps the first error message, so the
/// owning binary can report a truncated log instead of shipping it
/// silently (see [`FileSink::write_errors`]).
#[derive(Debug)]
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
    write_errors: AtomicU64,
    first_error: Mutex<Option<String>>,
}

impl FileSink {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(FileSink {
            writer: Mutex::new(BufWriter::new(file)),
            write_errors: AtomicU64::new(0),
            first_error: Mutex::new(None),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BufWriter<File>> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn record_error(&self, error: &io::Error) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
        let mut first = self.first_error.lock().unwrap_or_else(|e| e.into_inner());
        if first.is_none() {
            *first = Some(error.to_string());
        }
    }

    /// Number of writes (or flushes) that failed since creation.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// The first I/O error encountered, if any.
    #[must_use]
    pub fn first_error(&self) -> Option<String> {
        self.first_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

impl EventSink for FileSink {
    fn emit(&self, event: &Event) {
        self.emit_tagged(None, event);
    }

    fn emit_tagged(&self, run: Option<&str>, event: &Event) {
        let mut writer = self.lock();
        if let Err(e) = writeln!(writer, "{}", event.to_jsonl_tagged(run)) {
            self.record_error(&e);
        }
    }

    fn flush(&self) {
        if let Err(e) = self.lock().flush() {
            self.record_error(&e);
        }
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use spotdc_units::{MonotonicNanos, Slot};

    use super::*;

    fn event(slot: u64) -> Event {
        Event::SlotCleared {
            slot: Slot::new(slot),
            at: MonotonicNanos::from_raw(slot * 10),
            price_per_kw_hour: 0.2,
            sold_watts: 100.0,
            revenue_rate_per_hour: 0.02,
            candidates_evaluated: 50,
        }
    }

    #[test]
    fn vec_sink_buffers_and_takes() {
        let sink = VecSink::new();
        assert!(sink.is_empty());
        sink.emit(&event(1));
        sink.emit(&event(2));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.snapshot().len(), 2);
        let taken = sink.take();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].slot(), Slot::new(1));
        assert!(sink.is_empty());
    }

    #[test]
    fn file_sink_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join("spotdc-telemetry-file-sink-test.jsonl");
        {
            let sink = FileSink::create(&path).unwrap();
            sink.emit(&event(7));
            sink.emit(&event(8));
            sink.flush();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> = body
            .lines()
            .map(|l| Event::from_jsonl(l).expect(l))
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].slot(), Slot::new(8));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_sink_writes_run_tags() {
        let path = std::env::temp_dir().join("spotdc-telemetry-file-sink-tagged-test.jsonl");
        {
            let sink = FileSink::create(&path).unwrap();
            sink.emit_tagged(Some("fig10"), &event(1));
            sink.emit_tagged(None, &event(2));
            sink.flush();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"run\":\"fig10\""), "line: {}", lines[0]);
        assert!(!lines[1].contains("\"run\""), "line: {}", lines[1]);
        for line in lines {
            Event::from_jsonl(line).expect(line);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vec_sink_default_emit_tagged_keeps_the_event() {
        let sink = VecSink::new();
        sink.emit_tagged(Some("fig11"), &event(3));
        assert_eq!(sink.take(), vec![event(3)]);
    }

    #[test]
    fn null_sink_discards() {
        NullSink.emit(&event(1));
        NullSink.flush();
    }

    #[test]
    fn ring_sink_keeps_only_the_last_capacity_events() {
        let ring = RingSink::new(3);
        assert_eq!(ring.capacity(), 3);
        assert!(ring.is_empty());
        for slot in 0..5 {
            ring.emit_tagged(Some("run-a"), &event(slot));
        }
        assert_eq!(ring.len(), 3);
        let kept: Vec<u64> = ring
            .snapshot()
            .iter()
            .map(|(run, e)| {
                assert_eq!(run.as_deref(), Some("run-a"));
                e.slot().index()
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events evicted first");
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_sink_zero_capacity_clamps_to_one() {
        let ring = RingSink::new(0);
        ring.emit(&event(9));
        ring.emit(&event(10));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.snapshot()[0].1.slot(), Slot::new(10));
        assert_eq!(ring.snapshot()[0].0, None);
    }

    #[test]
    fn file_sink_starts_with_no_errors() {
        let path = std::env::temp_dir().join("spotdc-telemetry-file-sink-clean-test.jsonl");
        let sink = FileSink::create(&path).unwrap();
        sink.emit(&event(1));
        sink.flush();
        assert_eq!(sink.write_errors(), 0);
        assert_eq!(sink.first_error(), None);
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn file_sink_surfaces_write_errors() {
        // /dev/full accepts the open but fails every write with ENOSPC,
        // which surfaces at the latest when the buffer flushes.
        let sink = FileSink::create("/dev/full").unwrap();
        for slot in 0..4096 {
            sink.emit(&event(slot));
        }
        sink.flush();
        assert!(sink.write_errors() > 0, "ENOSPC writes must be counted");
        let first = sink.first_error().expect("first error retained");
        assert!(!first.is_empty());
    }
}
