//! Spans, metrics, and a structured event log for the SpotDC market
//! pipeline — with zero external dependencies.
//!
//! The build environment is offline, so this crate hand-rolls the three
//! observability primitives the simulator needs instead of pulling in
//! `tracing`/`metrics`/`serde_json`:
//!
//! * **Spans** — [`span!`] opens a [`SpanGuard`] that records its
//!   wall-clock duration (and nesting depth) into the global registry
//!   when it drops.
//! * **Metrics** — the [`Registry`] holds counters, gauges, and
//!   fixed-bucket [`Histogram`]s with p50/p90/p99 extraction and
//!   Prometheus text exposition via [`Registry::render_prometheus`].
//! * **Events** — typed [`Event`]s serialize to JSON lines into an
//!   [`EventSink`] ([`FileSink`] for the `telemetry.jsonl` artifact,
//!   [`VecSink`] for tests, [`NullSink`] to drop everything).
//!
//! # Cost when disabled
//!
//! Telemetry is off by default. Every entry point ([`span!`],
//! [`emit`]) first reads one relaxed [`AtomicBool`]; nothing else runs
//! — no locks, no clocks, no formatting. The clearing benchmark in
//! `crates/bench` holds the disabled overhead under 2%.
//!
//! # Examples
//!
//! ```
//! use spotdc_telemetry as telemetry;
//! use spotdc_units::{MonotonicNanos, Slot};
//!
//! telemetry::install(telemetry::TelemetryConfig {
//!     enabled: true,
//!     sink: telemetry::SinkKind::Memory,
//!     sample_every: 1,
//! });
//!
//! {
//!     let _span = telemetry::span!("doc-example", slot = 3);
//!     telemetry::registry().inc_counter("spotdc_slots_cleared_total", 1);
//!     telemetry::emit(telemetry::Event::SlotCleared {
//!         slot: Slot::new(3),
//!         at: MonotonicNanos::now(),
//!         price_per_kw_hour: 0.25,
//!         sold_watts: 900.0,
//!         revenue_rate_per_hour: 0.225,
//!         candidates_evaluated: 64,
//!     });
//! }
//!
//! assert_eq!(telemetry::memory_sink().len(), 1);
//! let text = telemetry::registry().render_prometheus();
//! assert!(text.contains("spotdc_slots_cleared_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod sink;
mod span;

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

pub use event::Event;
pub use metrics::{Histogram, Registry, DURATION_BUCKETS};
pub use sink::{EventSink, FileSink, NullSink, RingSink, VecSink};
pub use span::SpanGuard;

/// Where emitted events should go, selectable from a `Copy` config.
///
/// `File` cannot carry a path and stay `Copy` (configs are embedded in
/// the engine's `Copy` config structs), so selecting it routes events
/// to whatever sink was installed via [`install_with_sink`] — the repro
/// binary constructs the [`FileSink`] itself.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// Drop every event.
    #[default]
    Null,
    /// Buffer events in the process-global [`memory_sink`].
    Memory,
    /// Keep the explicitly installed sink (see [`install_with_sink`]).
    File,
}

/// Telemetry configuration, threaded through the engine and operator
/// config structs (hence `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch; when false every telemetry entry point is a
    /// single relaxed atomic load.
    pub enabled: bool,
    /// Destination for structured events.
    pub sink: SinkKind,
    /// Down-sampling period for routine per-slot events: only slots
    /// whose index is a multiple of this reach the sink. Critical
    /// events ([`Event::is_critical`]) always pass. Zero behaves as 1.
    pub sample_every: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            sink: SinkKind::Null,
            sample_every: 1,
        }
    }
}

impl TelemetryConfig {
    /// Enabled, unsampled, buffering events in [`memory_sink`] — the
    /// configuration tests and experiments want.
    #[must_use]
    pub fn in_memory() -> Self {
        TelemetryConfig {
            enabled: true,
            sink: SinkKind::Memory,
            sample_every: 1,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);
static REGISTRY: OnceLock<Registry> = OnceLock::new();
static MEMORY_SINK: OnceLock<Arc<VecSink>> = OnceLock::new();
static SINK: RwLock<Option<Arc<dyn EventSink>>> = RwLock::new(None);
static RECORDER: RwLock<Option<Arc<dyn EventSink>>> = RwLock::new(None);

/// Whether telemetry is globally enabled. The fast path of every
/// instrumentation site; one relaxed atomic load.
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flips the global enable switch (prefer [`install`]).
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// The process-global metric registry.
#[must_use]
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// The process-global in-memory event sink (used by
/// [`SinkKind::Memory`]).
#[must_use]
pub fn memory_sink() -> Arc<VecSink> {
    MEMORY_SINK.get_or_init(|| Arc::new(VecSink::new())).clone()
}

/// Whether any `install*` call has run in this process.
#[must_use]
pub fn is_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Applies a configuration: sets the enable switch and sampling period
/// and installs the sink its [`SinkKind`] selects. `SinkKind::File`
/// keeps the currently installed sink (see [`install_with_sink`]).
pub fn install(config: TelemetryConfig) {
    INSTALLED.store(true, Ordering::SeqCst);
    SAMPLE_EVERY.store(config.sample_every.max(1), Ordering::Relaxed);
    match config.sink {
        SinkKind::Null => set_sink(None),
        SinkKind::Memory => set_sink(Some(memory_sink())),
        SinkKind::File => {}
    }
    // Enable last so no event races ahead of its sink.
    set_enabled(config.enabled);
}

/// Applies `config` only if no `install*` call has run yet; returns
/// whether this call performed the installation.
///
/// This is the entry point for library code (the simulation engine, the
/// operator): when simulations run on worker threads, an unconditional
/// [`install`] from each would race — later installs could swap the
/// sink out from under earlier runs mid-stream. A process that wants a
/// specific configuration (the `repro` binary, tests) installs it up
/// front and every in-engine call becomes a no-op; otherwise the first
/// engine to start wins and the rest keep its choice.
pub fn install_if_uninstalled(config: TelemetryConfig) -> bool {
    if INSTALLED
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return false;
    }
    SAMPLE_EVERY.store(config.sample_every.max(1), Ordering::Relaxed);
    match config.sink {
        SinkKind::Null => set_sink(None),
        SinkKind::Memory => set_sink(Some(memory_sink())),
        SinkKind::File => {}
    }
    set_enabled(config.enabled);
    true
}

/// Applies a configuration with an explicitly constructed sink (e.g. a
/// [`FileSink`] writing `telemetry.jsonl`).
pub fn install_with_sink(config: TelemetryConfig, sink: Arc<dyn EventSink>) {
    INSTALLED.store(true, Ordering::SeqCst);
    SAMPLE_EVERY.store(config.sample_every.max(1), Ordering::Relaxed);
    set_sink(Some(sink));
    set_enabled(config.enabled);
}

fn set_sink(sink: Option<Arc<dyn EventSink>>) {
    *SINK.write().unwrap_or_else(|e| e.into_inner()) = sink;
}

/// Installs a *recorder*: a second event channel alongside the primary
/// sink. The recorder receives **every** event — critical or not,
/// regardless of `sample_every` — because its consumer (the flight
/// recorder in `spotdc-obs`) needs the full local context around an
/// emergency, not a down-sampled view. Installing does not flip the
/// enable switch; events only flow while telemetry is enabled.
pub fn install_recorder(recorder: Arc<dyn EventSink>) {
    *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
}

/// Removes and returns the installed recorder, if any (tests and
/// shutdown paths).
pub fn uninstall_recorder() -> Option<Arc<dyn EventSink>> {
    RECORDER.write().unwrap_or_else(|e| e.into_inner()).take()
}

/// Whether a recorder is installed.
#[must_use]
pub fn has_recorder() -> bool {
    RECORDER.read().unwrap_or_else(|e| e.into_inner()).is_some()
}

thread_local! {
    /// Stack of run-id tags for the current thread; the innermost
    /// [`run_scope`] wins. A stack (not a slot) so nested scopes
    /// restore the outer tag on drop.
    static RUN_STACK: RefCell<Vec<Arc<str>>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`run_scope`]; pops the tag when dropped.
///
/// Not `Send`: the tag lives in a thread-local, so the guard must drop
/// on the thread that created it.
#[derive(Debug)]
pub struct RunScope {
    _not_send: PhantomData<*const ()>,
}

/// Tags every event emitted by this thread (until the guard drops)
/// with a run id — typically an experiment id like `"fig12"` — so
/// JSONL streams interleaved by concurrent simulations stay
/// attributable. Sinks receive the tag via
/// [`EventSink::emit_tagged`]; [`FileSink`] writes it as a `"run"`
/// field, which [`Event::from_jsonl`] tolerates on read-back.
///
/// The tag is thread-local: code that fans work out to other threads
/// must re-establish the scope on each worker (see
/// [`current_run`]).
#[must_use = "the tag is removed when the returned guard drops"]
pub fn run_scope(id: &str) -> RunScope {
    RUN_STACK.with(|stack| stack.borrow_mut().push(Arc::from(id)));
    RunScope {
        _not_send: PhantomData,
    }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        RUN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// The innermost run-id tag on this thread, if any. Fan-out helpers
/// capture this before spawning workers and re-establish it inside
/// each worker via [`run_scope`].
#[must_use]
pub fn current_run() -> Option<Arc<str>> {
    RUN_STACK.with(|stack| stack.borrow().last().cloned())
}

/// Emits a structured event to the installed sink.
///
/// No-op when telemetry is disabled, no sink is installed, or the
/// event is routine ([`Event::is_critical`] is false) and its slot is
/// down-sampled by `sample_every`. The thread's [`run_scope`] tag, if
/// any, rides along to the sink.
pub fn emit(event: Event) {
    if !is_enabled() {
        return;
    }
    let run = current_run();
    // The recorder channel is sampling-exempt: the flight recorder's
    // ring buffer must hold the complete local context around a
    // trigger, not the down-sampled stream the primary sink sees.
    {
        let recorder = RECORDER.read().unwrap_or_else(|e| e.into_inner());
        if let Some(recorder) = recorder.as_ref() {
            recorder.emit_tagged(run.as_deref(), &event);
        }
    }
    let sample_every = SAMPLE_EVERY.load(Ordering::Relaxed).max(1);
    if !event.is_critical() && !event.slot().index().is_multiple_of(sample_every) {
        return;
    }
    let sink = SINK.read().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = sink.as_ref() {
        sink.emit_tagged(run.as_deref(), &event);
    }
}

/// Flushes the installed sink and recorder (e.g. before reading
/// `telemetry.jsonl` or collecting black-box dumps).
pub fn flush() {
    let sink = SINK.read().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = sink.as_ref() {
        sink.flush();
    }
    drop(sink);
    let recorder = RECORDER.read().unwrap_or_else(|e| e.into_inner());
    if let Some(recorder) = recorder.as_ref() {
        recorder.flush();
    }
}

#[cfg(test)]
mod tests {
    use spotdc_units::{MonotonicNanos, Slot};

    use super::*;

    /// Tests below mutate process-global state; serialize them.
    fn with_global_lock(test: impl FnOnce()) {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let _ = memory_sink().take();
        test();
        install(TelemetryConfig::default());
        let _ = memory_sink().take();
    }

    fn cleared(slot: u64) -> Event {
        Event::SlotCleared {
            slot: Slot::new(slot),
            at: MonotonicNanos::from_raw(slot),
            price_per_kw_hour: 0.1,
            sold_watts: 10.0,
            revenue_rate_per_hour: 0.001,
            candidates_evaluated: 1,
        }
    }

    fn emergency(slot: u64) -> Event {
        Event::EmergencyTriggered {
            slot: Slot::new(slot),
            at: MonotonicNanos::from_raw(slot),
            level: "ups".to_owned(),
            load_watts: 2.0,
            capacity_watts: 1.0,
        }
    }

    #[test]
    fn emit_is_a_no_op_when_disabled() {
        with_global_lock(|| {
            install(TelemetryConfig {
                enabled: false,
                sink: SinkKind::Memory,
                sample_every: 1,
            });
            emit(cleared(1));
            assert!(memory_sink().is_empty());
        });
    }

    #[test]
    fn sampling_keeps_critical_events() {
        with_global_lock(|| {
            install(TelemetryConfig {
                enabled: true,
                sink: SinkKind::Memory,
                sample_every: 10,
            });
            for slot in 0..20 {
                emit(cleared(slot));
            }
            emit(emergency(13)); // critical: bypasses sampling
            let events = memory_sink().take();
            let slots: Vec<u64> = events.iter().map(|e| e.slot().index()).collect();
            assert_eq!(slots, vec![0, 10, 13]);
        });
    }

    #[test]
    fn counters_sum_exactly_across_threads() {
        // Uses a fresh local registry: no global state, no lock needed.
        let registry = std::sync::Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let registry = registry.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        registry.inc_counter("spotdc_concurrency_smoke_total", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(registry.counter("spotdc_concurrency_smoke_total"), 8_000);
    }

    #[test]
    fn run_scopes_nest_and_unwind() {
        assert_eq!(current_run(), None);
        let outer = run_scope("fig12");
        assert_eq!(current_run().as_deref(), Some("fig12"));
        {
            let _inner = run_scope("fig12/capped");
            assert_eq!(current_run().as_deref(), Some("fig12/capped"));
        }
        assert_eq!(current_run().as_deref(), Some("fig12"));
        drop(outer);
        assert_eq!(current_run(), None);
    }

    #[test]
    fn run_scopes_are_per_thread() {
        let _outer = run_scope("main-thread");
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(current_run(), None, "tags must not leak across threads");
                let _worker = run_scope("worker");
                assert_eq!(current_run().as_deref(), Some("worker"));
            });
        });
        assert_eq!(current_run().as_deref(), Some("main-thread"));
    }

    #[test]
    fn install_if_uninstalled_yields_to_an_existing_install() {
        with_global_lock(|| {
            install(TelemetryConfig::in_memory());
            assert!(is_installed());
            let installed = install_if_uninstalled(TelemetryConfig {
                enabled: false,
                sink: SinkKind::Null,
                sample_every: 100,
            });
            assert!(!installed, "a prior install must win");
            // The losing config was not applied: telemetry is still
            // enabled and still pointed at the memory sink.
            emit(cleared(1));
            assert_eq!(memory_sink().take().len(), 1);
        });
    }

    #[test]
    fn recorder_channel_bypasses_sampling() {
        with_global_lock(|| {
            install(TelemetryConfig {
                enabled: true,
                sink: SinkKind::Memory,
                sample_every: 10,
            });
            let ring = Arc::new(RingSink::new(64));
            install_recorder(ring.clone());
            for slot in 0..20 {
                emit(cleared(slot));
            }
            emit(emergency(13));
            // The primary sink is down-sampled; the recorder sees all.
            let sampled: Vec<u64> = memory_sink()
                .take()
                .iter()
                .map(|e| e.slot().index())
                .collect();
            assert_eq!(sampled, vec![0, 10, 13]);
            assert_eq!(ring.len(), 21, "recorder receives every event");
            assert!(has_recorder());
            assert!(uninstall_recorder().is_some());
            assert!(!has_recorder());
            // With the recorder gone, emits only reach the sink.
            emit(emergency(14));
            assert_eq!(ring.len(), 21);
            let _ = memory_sink().take();
        });
    }

    #[test]
    fn install_in_memory_round_trips_events() {
        with_global_lock(|| {
            install(TelemetryConfig::in_memory());
            emit(cleared(5));
            flush();
            let events = memory_sink().take();
            assert_eq!(events.len(), 1);
            let line = events[0].to_jsonl();
            assert_eq!(Event::from_jsonl(&line).unwrap(), events[0]);
        });
    }
}
