//! Operator ↔ tenant message exchange and its failure semantics.
//!
//! SpotDC's wire protocol (Fig. 5/6 of the paper) is deliberately
//! boring — periodic heartbeats, one bid submission per tenant per
//! slot, one price broadcast back — because the *failure semantics*
//! carry the safety argument: **any communication loss degrades to "no
//! spot capacity"** for the affected tenant. A lost bid simply isn't
//! cleared; a lost price broadcast means the tenant cannot know its
//! grant, so the operator revokes it and the tenant stays at its
//! guaranteed capacity. Either way the slot is safe, just less
//! profitable.
//!
//! [`CommsModel`] injects those losses deterministically (seeded
//! xorshift, no external RNG dependency) and [`ProtocolEvent`] records
//! them for the evaluation.
//!
//! Bid losses draw from a sequential stream (one draw per submitted
//! bid, in submission order). Broadcast losses are keyed: each verdict
//! is a pure function of `(seed, slot, tenant)`, so the survivor set is
//! independent of tenant iteration order and of how many sub-markets
//! deliver the same slot's broadcasts — the per-PDU clearing ablation
//! gives every sub-market the same verdict for a tenant, and parallel
//! harnesses cannot perturb the schedule.

use serde::{Deserialize, Serialize};
use spotdc_units::{Slot, TenantId};

use crate::allocation::SpotAllocation;
use crate::bid::TenantBid;
use spotdc_power::PowerTopology;

/// A protocol-level event worth auditing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolEvent {
    /// A tenant's bid submission was lost; it will not participate
    /// this slot.
    BidLost {
        /// The affected tenant.
        tenant: TenantId,
        /// The slot whose market the bid was for.
        slot: Slot,
    },
    /// The price broadcast to a tenant was lost; its grants are revoked
    /// and it falls back to guaranteed capacity only.
    BroadcastLost {
        /// The affected tenant.
        tenant: TenantId,
        /// The slot whose allocation was revoked.
        slot: Slot,
    },
}

/// A lossy-channel model for the operator↔tenant exchange.
///
/// # Examples
///
/// ```
/// use spotdc_core::CommsModel;
///
/// let mut perfect = CommsModel::perfect();
/// assert!(perfect.bid_survives());
/// let mut lossy = CommsModel::new(1.0, 1.0, 42); // everything lost
/// assert!(!lossy.bid_survives());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommsModel {
    /// Probability a bid submission is lost, stored in parts per 2⁶⁴.
    bid_loss: u64,
    /// Probability a price broadcast is lost, in parts per 2⁶⁴.
    broadcast_loss: u64,
    /// Sequential bid-loss stream state (xorshift64*).
    state: u64,
    /// Construction seed, kept verbatim as the key base for the pure
    /// per-`(slot, tenant)` broadcast draws.
    seed: u64,
}

impl CommsModel {
    /// A channel with the given loss probabilities (each in `[0, 1]`)
    /// and deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(bid_loss: f64, broadcast_loss: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&bid_loss), "loss probability in [0,1]");
        assert!(
            (0.0..=1.0).contains(&broadcast_loss),
            "loss probability in [0,1]"
        );
        let to_fixed = |p: f64| -> u64 {
            if p >= 1.0 {
                u64::MAX
            } else {
                (p * (u64::MAX as f64)) as u64
            }
        };
        CommsModel {
            bid_loss: to_fixed(bid_loss),
            broadcast_loss: to_fixed(broadcast_loss),
            state: seed | 1, // xorshift state must be non-zero
            seed,
        }
    }

    /// A lossless channel.
    #[must_use]
    pub fn perfect() -> Self {
        CommsModel::new(0.0, 0.0, 1)
    }

    /// The sequential bid-loss stream state, for crash recovery. The
    /// broadcast draws are pure functions of the construction seed and
    /// need no state beyond it.
    #[must_use]
    pub fn stream_state(&self) -> u64 {
        self.state
    }

    /// Overwrites the sequential bid-loss stream state, for crash
    /// recovery. Zero (invalid for xorshift) is coerced to the same
    /// non-zero form the constructor uses.
    pub fn restore_stream_state(&mut self, state: u64) {
        self.state = state | u64::from(state == 0);
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Draws whether one bid submission survives the channel.
    pub fn bid_survives(&mut self) -> bool {
        let threshold = self.bid_loss;
        threshold == 0 || self.next() >= threshold
    }

    /// Whether the price broadcast to `tenant` at `slot` survives the
    /// channel. A pure function of `(seed, slot, tenant)` (splitmix64
    /// finalizer over the mixed key), so the verdict is stable however
    /// many times — and in whatever order — a slot's broadcasts are
    /// delivered.
    #[must_use]
    pub fn broadcast_survives_for(&self, slot: Slot, tenant: TenantId) -> bool {
        let threshold = self.broadcast_loss;
        if threshold == 0 {
            return true;
        }
        let mut x = self
            .seed
            .wrapping_add(slot.index().wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((tenant.index() as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x >= threshold
    }

    /// Filters a slot's bid submissions through the channel in place,
    /// keeping the survivors in `bids` (order preserved, one loss draw
    /// per bid) and returning the loss events. In-place so the
    /// engine's hoisted bid buffer is reused across slots instead of
    /// reallocated.
    pub fn deliver_bids(&mut self, slot: Slot, bids: &mut Vec<TenantBid>) -> Vec<ProtocolEvent> {
        let mut events = Vec::new();
        bids.retain(|bid| {
            if self.bid_survives() {
                true
            } else {
                events.push(ProtocolEvent::BidLost {
                    tenant: bid.tenant(),
                    slot,
                });
                false
            }
        });
        events
    }

    /// Applies broadcast losses to a cleared allocation: for each
    /// tenant whose broadcast is lost, every one of its racks' grants
    /// is revoked (the no-spot fallback). Returns the loss events.
    ///
    /// Verdicts come from [`Self::broadcast_survives_for`], so the same
    /// seed yields the same survivor set for a slot regardless of the
    /// order (or multiplicity) in which tenants are presented.
    pub fn deliver_broadcasts(
        &self,
        topology: &PowerTopology,
        allocation: &mut SpotAllocation,
        tenants: impl IntoIterator<Item = TenantId>,
    ) -> Vec<ProtocolEvent> {
        let slot = allocation.slot();
        let mut events = Vec::new();
        for tenant in tenants {
            if !self.broadcast_survives_for(slot, tenant) {
                for &rack in topology.racks_of_tenant(tenant) {
                    allocation.revoke(rack);
                }
                events.push(ProtocolEvent::BroadcastLost { tenant, slot });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::RackBid;
    use crate::demand::StepBid;
    use spotdc_power::topology::TopologyBuilder;
    use spotdc_units::{Price, RackId, Watts};

    fn bid(tenant: usize) -> TenantBid {
        TenantBid::new(
            TenantId::new(tenant),
            vec![RackBid::new(
                RackId::new(tenant),
                StepBid::new(Watts::new(10.0), Price::per_kw_hour(0.2))
                    .unwrap()
                    .into(),
            )],
        )
        .unwrap()
    }

    #[test]
    fn perfect_channel_loses_nothing() {
        let mut ch = CommsModel::perfect();
        let mut kept = vec![bid(0), bid(1), bid(2)];
        let events = ch.deliver_bids(Slot::ZERO, &mut kept);
        assert_eq!(kept.len(), 3);
        assert!(events.is_empty());
    }

    #[test]
    fn total_loss_loses_everything() {
        let mut ch = CommsModel::new(1.0, 1.0, 7);
        let mut kept = vec![bid(0), bid(1)];
        let events = ch.deliver_bids(Slot::new(3), &mut kept);
        assert!(kept.is_empty());
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            ProtocolEvent::BidLost { tenant, slot }
                if tenant == TenantId::new(0) && slot == Slot::new(3)
        ));
    }

    #[test]
    fn loss_rate_statistically_matches() {
        let mut ch = CommsModel::new(0.3, 0.0, 99);
        let n = 100_000;
        let losses = (0..n).filter(|_| !ch.bid_survives()).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = CommsModel::new(0.5, 0.5, 5);
        let mut b = CommsModel::new(0.5, 0.5, 5);
        for _ in 0..100 {
            assert_eq!(a.bid_survives(), b.bid_survives());
        }
    }

    #[test]
    fn lost_broadcast_revokes_all_tenant_racks() {
        let topo = TopologyBuilder::new(Watts::new(400.0))
            .pdu(Watts::new(400.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(50.0))
            .build()
            .unwrap();
        let mut alloc = SpotAllocation::new(
            Slot::new(2),
            Price::per_kw_hour(0.2),
            [
                (RackId::new(0), Watts::new(20.0)),
                (RackId::new(1), Watts::new(25.0)),
                (RackId::new(2), Watts::new(30.0)),
            ]
            .into_iter()
            .collect(),
        );
        let ch = CommsModel::new(0.0, 1.0, 3); // all broadcasts lost
        let events = ch.deliver_broadcasts(&topo, &mut alloc, [TenantId::new(0)]);
        assert_eq!(events.len(), 1);
        assert_eq!(alloc.grant(RackId::new(0)), Watts::ZERO);
        assert_eq!(alloc.grant(RackId::new(1)), Watts::ZERO);
        // Tenant 1 untouched (its broadcast wasn't in the lost set).
        assert_eq!(alloc.grant(RackId::new(2)), Watts::new(30.0));
    }

    /// Builds a one-rack-per-tenant topology plus a full allocation for
    /// the broadcast-determinism tests.
    fn broadcast_fixture(tenants: usize, slot: Slot) -> (PowerTopology, SpotAllocation) {
        let mut b = TopologyBuilder::new(Watts::new(100.0 * tenants as f64))
            .pdu(Watts::new(100.0 * tenants as f64));
        for i in 0..tenants {
            b = b.rack(TenantId::new(i), Watts::new(50.0), Watts::new(25.0));
        }
        let topo = b.build().unwrap();
        let alloc = SpotAllocation::new(
            slot,
            Price::per_kw_hour(0.2),
            (0..tenants)
                .map(|i| (RackId::new(i), Watts::new(10.0)))
                .collect(),
        );
        (topo, alloc)
    }

    /// Same seed ⇒ same survivor set, regardless of the order tenants
    /// are walked in — the property the per-PDU ablation and any
    /// parallel delivery schedule rely on.
    #[test]
    fn broadcast_survivors_are_order_independent() {
        const TENANTS: usize = 16;
        let ch = CommsModel::new(0.0, 0.5, 0xfeed);
        let survivors = |order: Vec<TenantId>, slot: Slot| -> Vec<f64> {
            let (topo, mut alloc) = broadcast_fixture(TENANTS, slot);
            ch.deliver_broadcasts(&topo, &mut alloc, order);
            (0..TENANTS)
                .map(|i| alloc.grant(RackId::new(i)).value())
                .collect()
        };
        let mut any_lost = false;
        let mut any_kept = false;
        for s in 0..8 {
            let slot = Slot::new(s);
            let forward: Vec<TenantId> = (0..TENANTS).map(TenantId::new).collect();
            let reverse: Vec<TenantId> = (0..TENANTS).rev().map(TenantId::new).collect();
            // An interleaved walk with duplicates — the per-PDU clearing
            // path presents every bidder once per sub-market.
            let doubled: Vec<TenantId> = forward.iter().chain(reverse.iter()).copied().collect();
            let a = survivors(forward, slot);
            let b = survivors(reverse, slot);
            let c = survivors(doubled, slot);
            assert_eq!(a, b, "survivor set depends on iteration order at {slot}");
            assert_eq!(
                a, c,
                "survivor set depends on delivery multiplicity at {slot}"
            );
            any_lost |= a.contains(&0.0);
            any_kept |= a.iter().any(|&g| g > 0.0);
        }
        assert!(
            any_lost && any_kept,
            "p = 0.5 should mix losses and survivals"
        );
    }

    /// Delivering the same slot twice revokes the same tenants again —
    /// a second pass is a no-op on the allocation.
    #[test]
    fn broadcast_delivery_is_idempotent() {
        let ch = CommsModel::new(0.0, 0.4, 17);
        let (topo, mut alloc) = broadcast_fixture(12, Slot::new(5));
        let tenants: Vec<TenantId> = (0..12).map(TenantId::new).collect();
        let first = ch.deliver_broadcasts(&topo, &mut alloc, tenants.iter().copied());
        let after_first: Vec<f64> = (0..12)
            .map(|i| alloc.grant(RackId::new(i)).value())
            .collect();
        let second = ch.deliver_broadcasts(&topo, &mut alloc, tenants);
        let after_second: Vec<f64> = (0..12)
            .map(|i| alloc.grant(RackId::new(i)).value())
            .collect();
        assert_eq!(first, second, "verdicts must be stable across deliveries");
        assert_eq!(after_first, after_second);
    }

    /// The keyed draws still hit the configured loss rate across slots
    /// and tenants.
    #[test]
    fn broadcast_loss_rate_statistically_matches() {
        let ch = CommsModel::new(0.0, 0.3, 424_242);
        let mut losses = 0usize;
        let mut n = 0usize;
        for slot in 0..1000 {
            for tenant in 0..100 {
                n += 1;
                if !ch.broadcast_survives_for(Slot::new(slot), TenantId::new(tenant)) {
                    losses += 1;
                }
            }
        }
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "loss probability in [0,1]")]
    fn bad_probability_rejected() {
        let _ = CommsModel::new(1.5, 0.0, 1);
    }
}
