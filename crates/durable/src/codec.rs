//! A minimal binary codec with exact float round-trips.
//!
//! Everything is little-endian and length-prefixed; `f64`s are encoded
//! as their raw IEEE-754 bit pattern (`to_bits`), so the decoded value
//! is bit-identical to the encoded one — including negative zero and
//! any NaN payload. There is no schema negotiation: the caller decodes
//! fields in exactly the order it encoded them, and the snapshot
//! format version (checked by the policy layer) guards evolution.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the requested field.
    UnexpectedEnd {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes left in the buffer.
        remaining: usize,
    },
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
    /// An option tag byte was neither 0 nor 1.
    BadOptionTag(u8),
    /// A length prefix exceeds the remaining buffer (or a sanity bound).
    BadLength(u64),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A domain-level constraint failed while rebuilding a value (an
    /// enum tag out of range, a constructor rejecting its inputs).
    Invalid(String),
    /// Decoding finished with unread bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd { needed, remaining } => {
                write!(
                    f,
                    "record ended early: needed {needed} bytes, {remaining} left"
                )
            }
            DecodeError::BadBool(b) => write!(f, "invalid boolean byte {b:#04x}"),
            DecodeError::BadOptionTag(b) => write!(f, "invalid option tag {b:#04x}"),
            DecodeError::BadLength(n) => write!(f, "implausible length prefix {n}"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::Invalid(why) => write!(f, "invalid value: {why}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} unread bytes after the last field"),
        }
    }
}

impl Error for DecodeError {}

/// Appends fields to a growing byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// An empty encoder reusing `buf`'s allocation (the buffer is
    /// cleared, not appended to). Hot paths that encode every slot —
    /// the distributed wire protocol — recycle one buffer instead of
    /// reallocating per message.
    #[must_use]
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Encoder { buf }
    }

    /// The encoded bytes so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder into its byte buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Reads fields back in encode order.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| DecodeError::BadLength(v))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a boolean byte.
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadBool(b)),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(DecodeError::BadLength(n as u64));
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| DecodeError::BadUtf8)
    }

    /// Asserts every byte was consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(DecodeError::TrailingBytes(n)),
        }
    }
}

/// A value that can round-trip through the binary codec.
///
/// The contract is exactness: `Persist::restore(decode(encode(x)))`
/// must equal `x` down to float bit patterns.
pub trait Persist: Sized {
    /// Appends this value's encoding to `enc`.
    fn persist(&self, enc: &mut Encoder);
    /// Reads one value back, in encode order.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the buffer is exhausted or holds
    /// an invalid encoding.
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

impl Persist for u8 {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_u8()
    }
}

impl Persist for u32 {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_u32()
    }
}

impl Persist for u64 {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_u64()
    }
}

impl Persist for usize {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_usize(*self);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_usize()
    }
}

impl Persist for f64 {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_f64()
    }
}

impl Persist for bool {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_bool()
    }
}

impl Persist for String {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(dec.get_str()?.to_owned())
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.persist(enc);
            }
        }
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(dec)?)),
            b => Err(DecodeError::BadOptionTag(b)),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for v in self {
            v.persist(enc);
        }
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.get_usize()?;
        // Every element costs at least one byte, so a length beyond
        // the remaining buffer is a lie — reject it before allocating.
        if n > dec.remaining() {
            return Err(DecodeError::BadLength(n as u64));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::restore(dec)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for v in self {
            v.persist(enc);
        }
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Vec::<T>::restore(dec)?.into())
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, enc: &mut Encoder) {
        self.0.persist(enc);
        self.1.persist(enc);
    }
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::restore(dec)?, B::restore(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xdead_beef);
        enc.put_u64(u64::MAX);
        enc.put_f64(-0.0);
        enc.put_f64(f64::NAN);
        enc.put_bool(true);
        enc.put_str("héllo\n");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(dec.get_f64().unwrap().is_nan());
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_str().unwrap(), "héllo\n");
        dec.finish().unwrap();
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u64>> = vec![None, Some(3), Some(u64::MAX)];
        let q: VecDeque<f64> = vec![1.5, -2.25, 0.1].into();
        let mut enc = Encoder::new();
        v.persist(&mut enc);
        q.persist(&mut enc);
        (42u64, "x".to_owned()).persist(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Vec::<Option<u64>>::restore(&mut dec).unwrap(), v);
        assert_eq!(VecDeque::<f64>::restore(&mut dec).unwrap(), q);
        assert_eq!(
            <(u64, String)>::restore(&mut dec).unwrap(),
            (42, "x".to_owned())
        );
        dec.finish().unwrap();
    }

    #[test]
    fn truncated_buffers_error_instead_of_panicking() {
        let mut enc = Encoder::new();
        enc.put_u64(5);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(matches!(
                dec.get_u64(),
                Err(DecodeError::UnexpectedEnd { .. })
            ));
        }
    }

    #[test]
    fn lying_length_prefixes_are_rejected() {
        let mut enc = Encoder::new();
        enc.put_usize(1_000_000); // claims a million elements...
        let bytes = enc.into_bytes(); // ...but provides none
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            Vec::<u64>::restore(&mut dec),
            Err(DecodeError::BadLength(_))
        ));
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.get_bytes(), Err(DecodeError::BadLength(_))));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let bytes = [2u8];
        assert!(matches!(
            Decoder::new(&bytes).get_bool(),
            Err(DecodeError::BadBool(2))
        ));
        assert!(matches!(
            Option::<u64>::restore(&mut Decoder::new(&bytes)),
            Err(DecodeError::BadOptionTag(2))
        ));
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let bytes = [0u8; 3];
        let mut dec = Decoder::new(&bytes);
        dec.get_u8().unwrap();
        assert_eq!(dec.finish(), Err(DecodeError::TrailingBytes(2)));
    }
}
