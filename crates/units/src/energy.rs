//! Electrical energy.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{SlotDuration, Watts};

/// Electrical energy in kilowatt-hours.
///
/// Energy shows up in SpotDC as the metered quantity that tenants are
/// billed for: a rack drawing [`Watts`] for a [`SlotDuration`] consumes
/// `KilowattHours`, and the tenant's energy bill is that quantity times
/// an energy rate. See [`Watts`] for the instantaneous counterpart.
///
/// # Examples
///
/// ```
/// use spotdc_units::{KilowattHours, SlotDuration, Watts};
///
/// let slot = SlotDuration::from_secs(3600);
/// let e = KilowattHours::from_power(Watts::new(500.0), slot);
/// assert_eq!(e, KilowattHours::new(0.5));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct KilowattHours(f64);

impl KilowattHours {
    /// Zero energy.
    pub const ZERO: KilowattHours = KilowattHours(0.0);

    /// Creates an energy value from kilowatt-hours.
    #[must_use]
    pub const fn new(kwh: f64) -> Self {
        KilowattHours(kwh)
    }

    /// The energy consumed drawing `power` for `duration`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use spotdc_units::{KilowattHours, SlotDuration, Watts};
    /// let e = KilowattHours::from_power(Watts::new(1000.0), SlotDuration::from_secs(1800));
    /// assert_eq!(e.value(), 0.5);
    /// ```
    #[must_use]
    pub fn from_power(power: Watts, duration: SlotDuration) -> Self {
        KilowattHours(power.kilowatts() * duration.hours())
    }

    /// The raw value in kilowatt-hours.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Replaces negative values with zero.
    #[must_use]
    pub fn clamp_non_negative(self) -> Self {
        if self.0 < 0.0 {
            KilowattHours::ZERO
        } else {
            self
        }
    }
}

impl fmt::Display for KilowattHours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} kWh", prec, self.0)
        } else {
            write!(f, "{} kWh", self.0)
        }
    }
}

impl Add for KilowattHours {
    type Output = KilowattHours;
    fn add(self, rhs: KilowattHours) -> KilowattHours {
        KilowattHours(self.0 + rhs.0)
    }
}

impl AddAssign for KilowattHours {
    fn add_assign(&mut self, rhs: KilowattHours) {
        self.0 += rhs.0;
    }
}

impl Sub for KilowattHours {
    type Output = KilowattHours;
    fn sub(self, rhs: KilowattHours) -> KilowattHours {
        KilowattHours(self.0 - rhs.0)
    }
}

impl Mul<f64> for KilowattHours {
    type Output = KilowattHours;
    fn mul(self, rhs: f64) -> KilowattHours {
        KilowattHours(self.0 * rhs)
    }
}

impl Div<f64> for KilowattHours {
    type Output = KilowattHours;
    fn div(self, rhs: f64) -> KilowattHours {
        KilowattHours(self.0 / rhs)
    }
}

impl Sum for KilowattHours {
    fn sum<I: Iterator<Item = KilowattHours>>(iter: I) -> KilowattHours {
        KilowattHours(iter.map(|e| e.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_power_integrates_over_duration() {
        let e = KilowattHours::from_power(Watts::new(250.0), SlotDuration::from_secs(7200));
        assert!((e.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = KilowattHours::new(1.5);
        let b = KilowattHours::new(0.5);
        assert_eq!(a + b, KilowattHours::new(2.0));
        assert_eq!(a - b, KilowattHours::new(1.0));
        assert_eq!(a * 2.0, KilowattHours::new(3.0));
        assert_eq!(a / 3.0, KilowattHours::new(0.5));
        let mut c = a;
        c += b;
        assert_eq!(c, KilowattHours::new(2.0));
    }

    #[test]
    fn sum_and_display() {
        let total: KilowattHours = [KilowattHours::new(0.25); 4].into_iter().sum();
        assert_eq!(total, KilowattHours::new(1.0));
        assert_eq!(format!("{:.2}", total), "1.00 kWh");
    }

    #[test]
    fn clamp_non_negative() {
        assert_eq!(
            KilowattHours::new(-1.0).clamp_non_negative(),
            KilowattHours::ZERO
        );
        assert_eq!(
            KilowattHours::new(1.0).clamp_non_negative(),
            KilowattHours::new(1.0)
        );
    }
}
