//! Allocator micro-benchmarks: MaxPerf water-filling, spot prediction
//! and demand-function evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spotdc_bench::{gain_fixture, market_fixture};
use spotdc_core::{max_perf_allocate, SpotPredictor};
use spotdc_power::PowerMeter;
use spotdc_units::{Price, RackId, Slot, Watts};

fn bench_maxperf(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxperf_allocate");
    group.sample_size(20);
    for racks in [100usize, 1000, 5000] {
        let (_topo, _bids, constraints) = market_fixture(racks, 7);
        let gains = gain_fixture(racks);
        group.bench_with_input(BenchmarkId::from_parameter(racks), &racks, |b, _| {
            b.iter(|| {
                let grants = max_perf_allocate(std::hint::black_box(&gains), &constraints);
                std::hint::black_box(grants.len())
            })
        });
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("spot_prediction");
    group.sample_size(20);
    for racks in [1000usize, 15_000] {
        let (topo, _bids, _cs) = market_fixture(racks, 7);
        let mut meter = PowerMeter::new(&topo, 4).expect("positive history length");
        for i in 0..racks {
            meter.record(Slot::ZERO, RackId::new(i), Watts::new(3000.0));
        }
        let predictor = SpotPredictor::under_predicting(10.0);
        let requesting: Vec<RackId> = (0..racks / 5).map(RackId::new).collect();
        group.bench_with_input(BenchmarkId::from_parameter(racks), &racks, |b, _| {
            b.iter(|| {
                let spot = predictor.predict(&topo, &meter, requesting.iter().copied());
                std::hint::black_box(spot.ups)
            })
        });
    }
    group.finish();
}

fn bench_demand_evaluation(c: &mut Criterion) {
    let (_topo, bids, _cs) = market_fixture(5000, 7);
    c.bench_function("aggregate_demand_5000_racks", |b| {
        let price = Price::per_kw_hour(0.15);
        b.iter(|| {
            let total: Watts = bids.iter().map(|rb| rb.demand_at(price)).sum();
            std::hint::black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_maxperf,
    bench_prediction,
    bench_demand_evaluation
);
criterion_main!(benches);
