# Developer entry points. `make verify` is the full pre-merge gate.

CARGO ?= cargo
JOBS ?= 4

.PHONY: build test bench bench-repro clippy clippy-par determinism fmt verify repro

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace -- -D warnings

# The parallel layer is small and load-bearing; lint it on its own so a
# workspace-wide allow never papers over a warning here.
clippy-par:
	$(CARGO) clippy -p spotdc-par -- -D warnings

# Byte-identical output at 1 vs 4 workers — the parallel layer's anchor.
determinism:
	$(CARGO) test -p spotdc-sim --test determinism

fmt:
	$(CARGO) fmt --check

bench:
	$(CARGO) bench -p spotdc-bench

# Wall-clock the full reproduction harness and record per-experiment
# timings (see BENCH_repro.json for the checked-in reference run).
bench-repro: build
	$(CARGO) run -p spotdc-bench --bin repro --release -- --quick --quiet \
		--jobs $(JOBS) --bench-json BENCH_repro.json

repro:
	$(CARGO) run -p spotdc-bench --bin repro --release -- --quick \
		--out repro-results --telemetry repro-results/telemetry.jsonl

verify: build test determinism clippy clippy-par fmt
