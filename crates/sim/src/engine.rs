//! The time-slotted simulation loop.
//!
//! One iteration per slot, mirroring Algorithm 1 and Fig. 6 of the
//! paper:
//!
//! 1. tenants observe their load traces;
//! 2. (SpotDC) they submit bids over a lossy channel, the operator
//!    predicts spot capacity from *last* slot's meter readings, clears
//!    the market and broadcasts the price — lost broadcasts revoke the
//!    affected grants;
//! 3. (MaxPerf) the omniscient allocator water-fills tenants' gain
//!    curves under the same constraints;
//! 4. grants are programmed into the intelligent rack PDUs, tenants run
//!    under their budgets, the meter records every rack's draw, and the
//!    emergency log checks each capacity boundary.
//!
//! The loop distinguishes **physical** power (what racks actually draw,
//! which feeds the emergency log and the per-slot records) from
//! **observed** power (what the meter reports, which feeds prediction
//! and clearing). With fault injection off the two are identical, down
//! to the float-accumulation order; a [`FaultConfig`] lets them
//! diverge — dropped, frozen or noisy meter samples, lost or late
//! bids, delayed prediction inputs — so the degradation paths
//! ([`StalenessPolicy`] margins, [`CapController`] shedding, the
//! post-clearing invariant checker) can be exercised deterministically.
//!
//! [`StalenessPolicy`]: spotdc_core::StalenessPolicy

use std::collections::BTreeMap;

use spotdc_core::{
    check_allocation, max_perf_allocate, CommsModel, ConcaveGain, ConstraintSet, MarketClearing,
    MarketInvariant, Operator, OperatorConfig,
};
use spotdc_faults::{FaultConfig, FaultPlan, MeterFault};
use spotdc_power::{
    CapConfig, CapController, EmergencyEvent, EmergencyLog, PowerMeter, RackPduBank,
};
use spotdc_units::{RackId, Slot, TenantId, Watts};

use crate::baselines::Mode;
use crate::metrics::{SimReport, SlotRecord, TenantSlotMetrics};
use crate::scenario::Scenario;

/// Configuration for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Operating mode (PowerCapped / SpotDC / MaxPerf).
    pub mode: Mode,
    /// Operator-side market configuration.
    pub operator: OperatorConfig,
    /// Probability a bid submission is lost.
    pub bid_loss: f64,
    /// Probability a price broadcast is lost.
    pub broadcast_loss: f64,
    /// Fig. 16: run a pre-clearing pass and feed the resulting price to
    /// price-predicting strategies ("perfect knowledge of market
    /// price").
    pub price_oracle: bool,
    /// Ablation: clear each PDU independently at its own localized
    /// price instead of the paper's single uniform price.
    pub per_pdu_pricing: bool,
    /// Telemetry settings. Installed process-wide at the start of
    /// [`Simulation::run`] when `telemetry.enabled` is set *and* no
    /// earlier install happened, so the disabled default never clobbers
    /// a sink installed elsewhere (e.g. by a test or the repro binary)
    /// and concurrent simulations never race on the global sink.
    pub telemetry: spotdc_telemetry::TelemetryConfig,
    /// Fault-injection schedule. Disabled by default; when disabled the
    /// engine takes the exact pre-fault code path, so outputs stay
    /// byte-identical to a build without the fault layer.
    pub faults: FaultConfig,
    /// Graceful-degradation cap controller (spot-before-guaranteed
    /// shedding with hysteresis). Disabled by default.
    pub cap: CapConfig,
    /// Run the post-clearing invariant checker (Eqns. 1–4) every slot.
    /// Defaults to on in debug builds; in release it can be forced at
    /// runtime via [`crate::validate::set_forced`] (the repro binary's
    /// `--validate` flag).
    pub validate: bool,
}

impl EngineConfig {
    /// Default configuration for the given mode: paper-default market
    /// settings, lossless communications, no price oracle.
    #[must_use]
    pub fn new(mode: Mode) -> Self {
        EngineConfig {
            mode,
            operator: OperatorConfig::default(),
            bid_loss: 0.0,
            broadcast_loss: 0.0,
            price_oracle: false,
            per_pdu_pricing: false,
            telemetry: spotdc_telemetry::TelemetryConfig::default(),
            faults: FaultConfig::disabled(),
            cap: CapConfig::disabled(),
            validate: cfg!(debug_assertions),
        }
    }
}

/// Records `draw` into the meter, applying any scheduled meter fault:
/// a dropout skips the sample (detectable staleness), a freeze
/// re-records the last value as if fresh (undetectable), noise scales
/// the sample. Returns `true` when a fault fired.
fn record_observed(
    meter: &mut PowerMeter,
    plan: &FaultPlan,
    active: bool,
    slot: Slot,
    rack: RackId,
    draw: Watts,
) -> bool {
    if !active {
        meter.record(slot, rack, draw);
        return false;
    }
    let Some(fault) = plan.meter_fault(slot, rack) else {
        meter.record(slot, rack, draw);
        return false;
    };
    if spotdc_telemetry::is_enabled() {
        spotdc_telemetry::registry().inc_counter("spotdc_faults_injected_total", 1);
        spotdc_telemetry::emit(spotdc_telemetry::Event::FaultInjected {
            slot,
            at: spotdc_units::MonotonicNanos::now(),
            kind: fault.kind().to_owned(),
            target: rack.to_string(),
        });
    }
    match fault {
        MeterFault::Dropout => {}
        MeterFault::Freeze => {
            if let Some(prev) = meter.latest(rack) {
                meter.record(slot, rack, prev.power);
            }
        }
        MeterFault::Noise { relative } => {
            meter.record(slot, rack, draw * (1.0 + relative));
        }
    }
    true
}

/// Counts and reports post-clearing invariant violations. Every
/// violation is a bug somewhere upstream — clearing, degradation or
/// capping — so debug builds abort on the spot.
fn note_violations(slot: Slot, violations: &[MarketInvariant], count: &mut usize) {
    if violations.is_empty() {
        return;
    }
    *count += violations.len();
    crate::validate::record_violations(violations.len());
    if spotdc_telemetry::is_enabled() {
        spotdc_telemetry::registry()
            .inc_counter("spotdc_invariant_violations_total", violations.len() as u64);
        for v in violations {
            spotdc_telemetry::emit(spotdc_telemetry::Event::InvariantViolated {
                slot,
                at: spotdc_units::MonotonicNanos::now(),
                violation: v.to_string(),
            });
        }
    }
    debug_assert!(
        violations.is_empty(),
        "market invariants violated at {slot}: {violations:?}"
    );
}

/// A runnable simulation: a scenario plus an engine configuration.
#[derive(Debug, Clone)]
pub struct Simulation {
    scenario: Scenario,
    config: EngineConfig,
}

impl Simulation {
    /// Creates a simulation.
    #[must_use]
    pub fn new(scenario: Scenario, config: EngineConfig) -> Self {
        Simulation { scenario, config }
    }

    /// Runs `slots` slots and returns the full report.
    #[must_use]
    pub fn run(self, slots: u64) -> SimReport {
        let Simulation { scenario, config } = self;
        if config.telemetry.enabled {
            spotdc_telemetry::install_if_uninstalled(config.telemetry);
        }
        let n = slots as usize;
        // Memoized: every mode of this scenario shares one generated
        // trace set instead of regenerating it per run.
        let traces = scenario.traces(n);
        let loads = &traces.loads;
        let other_traces = &traces.others;
        let topology = scenario.topology.clone();
        let operator = Operator::new(topology.clone(), config.operator);
        let mut meter =
            PowerMeter::new(&topology, 4).expect("engine meter history length is positive");
        let mut bank = RackPduBank::new(&topology);
        let mut emergencies = EmergencyLog::new(&topology);
        let plan = FaultPlan::new(config.faults);
        let faults_active = plan.any();
        let track_prev_meter = faults_active && config.faults.prediction_delay > 0.0;
        let mut prev_meter: Option<PowerMeter> = None;
        let mut cap = config
            .cap
            .enabled
            .then(|| CapController::new(&topology, config.cap));
        let validate = config.validate || crate::validate::forced();
        let guaranteed: Vec<Watts> = topology.racks().map(|r| r.guaranteed()).collect();
        let rack_pdu: Vec<usize> = topology.racks().map(|r| r.pdu().index()).collect();
        let mut faults_injected = 0usize;
        let mut degraded_slots = 0usize;
        let mut invariant_violations = 0usize;
        let mut comms = CommsModel::new(
            config.bid_loss,
            config.broadcast_loss,
            scenario.seed ^ 0x00c0_b1d5,
        );
        let mut agents = scenario.agents.clone();
        let slot_hours = scenario.slot.hours();

        // Warm the meter with slot-0 loads under reserved budgets so the
        // first prediction has references to work from. Warm-up is
        // initialization, not operation: it is never faulted.
        let mut true_draw: Vec<Watts> = vec![Watts::ZERO; topology.rack_count()];
        for (i, agent) in agents.iter_mut().enumerate() {
            agent.observe(loads[i].first().copied().unwrap_or(0.0));
            let out = agent.run_slot(agent.reserved());
            meter.record(Slot::ZERO, agent.rack(), out.draw);
            true_draw[agent.rack().index()] = out.draw.clamp_non_negative();
        }
        for (j, other) in scenario.others.iter().enumerate() {
            let draw = other_traces[j].first().copied().unwrap_or(Watts::ZERO);
            let draw = draw.min(other.subscription);
            meter.record(Slot::ZERO, other.rack, draw);
            true_draw[other.rack.index()] = draw.clamp_non_negative();
        }
        // Per-PDU non-spot ("base") load of the previous slot — what the
        // cap controller budgets spot against.
        let mut prev_base_pdu: Vec<Watts> = vec![Watts::ZERO; topology.pdu_count()];
        for (i, &d) in true_draw.iter().enumerate() {
            prev_base_pdu[rack_pdu[i]] += d.min(guaranteed[i]);
        }
        let mut last_emergencies: Vec<EmergencyEvent> = Vec::new();

        let mut records = Vec::with_capacity(n);
        // Running mean of |predicted spot − realized headroom|, exported
        // as a gauge so operators can see how conservative the predictor
        // is over a run.
        let mut prediction_error_sum = 0.0;
        let mut prediction_error_count = 0u64;

        // Scratch buffers hoisted out of the slot loop so the steady
        // state allocates nothing per slot. Payments are a flat vector
        // over the dense rack index space instead of a fresh BTreeMap
        // per slot.
        let mut payments: Vec<f64> = vec![0.0; topology.rack_count()];
        let mut bids: Vec<spotdc_core::TenantBid> = Vec::with_capacity(agents.len());
        let mut bidders: Vec<TenantId> = Vec::with_capacity(agents.len());
        let mut rack_bids: Vec<spotdc_core::RackBid> = Vec::new();
        let mut requesting: Vec<RackId> = Vec::new();
        let mut gains: BTreeMap<RackId, ConcaveGain> = BTreeMap::new();
        let mut wanting: Vec<RackId> = Vec::new();
        let mut late_bids: Vec<spotdc_core::TenantBid> = Vec::new();
        let per_pdu_clearing = MarketClearing::new(config.operator.clearing);

        for t in 0..n {
            let slot = Slot::new(t as u64);
            let _slot_span = spotdc_telemetry::span!("engine.slot", slot = slot);
            for (i, agent) in agents.iter_mut().enumerate() {
                agent.observe(loads[i][t]);
            }
            bank.reset_all(slot);

            let mut price = None;
            let mut spot_sold = 0.0;
            let mut spot_available = 0.0;
            let mut slot_degraded = false;
            payments.fill(0.0);

            // Delayed prediction input: the operator sees the meter as
            // it stood at the end of the previous slot.
            let delayed = faults_active && plan.prediction_delayed(slot);
            if delayed {
                faults_injected += 1;
                if spotdc_telemetry::is_enabled() {
                    spotdc_telemetry::registry().inc_counter("spotdc_faults_injected_total", 1);
                    spotdc_telemetry::emit(spotdc_telemetry::Event::FaultInjected {
                        slot,
                        at: spotdc_units::MonotonicNanos::now(),
                        kind: "prediction-delay".to_owned(),
                        target: "operator".to_owned(),
                    });
                }
            }
            let market_meter: &PowerMeter = match (&prev_meter, delayed) {
                (Some(prev), true) => prev,
                _ => &meter,
            };

            match config.mode {
                Mode::PowerCapped => {}
                Mode::SpotDc => {
                    bids.clear();
                    bids.extend(agents.iter_mut().filter_map(|a| a.make_bid()));
                    if config.price_oracle {
                        let pre = operator.run_slot(slot, &bids, &meter);
                        let oracle =
                            (pre.outcome.sold() > Watts::ZERO).then(|| pre.outcome.price());
                        for a in agents.iter_mut() {
                            a.predict_price(oracle);
                        }
                        bids.clear();
                        bids.extend(agents.iter_mut().filter_map(|a| a.make_bid()));
                    }
                    if faults_active {
                        // Late bids from the previous slot arrive now —
                        // unless the tenant already submitted a fresh
                        // one, which supersedes the stale copy.
                        for b in late_bids.drain(..) {
                            if !bids.iter().any(|x| x.tenant() == b.tenant()) {
                                bids.push(b);
                            }
                        }
                        let mut i = 0;
                        while i < bids.len() {
                            match plan.bid_fault(slot, bids[i].tenant()) {
                                None => i += 1,
                                Some(fault) => {
                                    faults_injected += 1;
                                    if spotdc_telemetry::is_enabled() {
                                        spotdc_telemetry::registry()
                                            .inc_counter("spotdc_faults_injected_total", 1);
                                        spotdc_telemetry::emit(
                                            spotdc_telemetry::Event::FaultInjected {
                                                slot,
                                                at: spotdc_units::MonotonicNanos::now(),
                                                kind: fault.kind().to_owned(),
                                                target: bids[i].tenant().to_string(),
                                            },
                                        );
                                    }
                                    let bid = bids.remove(i);
                                    if fault == spotdc_faults::BidFault::Late {
                                        late_bids.push(bid);
                                    }
                                }
                            }
                        }
                    }
                    let _lost_bids = comms.deliver_bids(slot, &mut bids);
                    bidders.clear();
                    bidders.extend(bids.iter().map(|b| b.tenant()));
                    if config.per_pdu_pricing {
                        // Localized-price ablation: clear each PDU's
                        // sub-market independently.
                        rack_bids.clear();
                        rack_bids.extend(bids.iter().flat_map(|b| b.rack_bids().iter().cloned()));
                        requesting.clear();
                        requesting.extend(rack_bids.iter().map(|rb| rb.rack()));
                        let predicted = match config.operator.staleness {
                            None => operator.predictor().predict(
                                &topology,
                                market_meter,
                                requesting.iter().copied(),
                            ),
                            Some(policy) => {
                                let d = operator.predictor().predict_with_staleness(
                                    &topology,
                                    market_meter,
                                    requesting.iter().copied(),
                                    slot,
                                    policy,
                                );
                                slot_degraded |= d.is_degraded();
                                d.spot
                            }
                        };
                        spot_available = predicted.total_pdu().min(predicted.ups).value();
                        let constraints =
                            ConstraintSet::new(&topology, predicted.pdu.clone(), predicted.ups);
                        let mut revenue_weighted_price = 0.0;
                        let mut combined: BTreeMap<RackId, Watts> = BTreeMap::new();
                        for outcome in
                            per_pdu_clearing.clear_per_pdu(slot, &rack_bids, &constraints)
                        {
                            let mut alloc = outcome.into_allocation();
                            comms.deliver_broadcasts(
                                &topology,
                                &mut alloc,
                                bidders.iter().copied(),
                            );
                            if validate {
                                note_violations(
                                    slot,
                                    &check_allocation(&constraints, &alloc, &rack_bids, true),
                                    &mut invariant_violations,
                                );
                                for (rack, grant) in alloc.iter() {
                                    combined.insert(rack, grant);
                                }
                            }
                            for (rack, grant) in alloc.iter() {
                                if grant > Watts::ZERO {
                                    bank.grant_spot(slot, rack, grant)
                                        .expect("cleared grants respect rack headroom");
                                    payments[rack.index()] =
                                        alloc.payment_for(rack, scenario.slot).usd();
                                }
                            }
                            let sold = alloc.total().value();
                            spot_sold += sold;
                            revenue_weighted_price += alloc.price().per_kw_hour_value() * sold;
                        }
                        if validate {
                            // The sub-markets share the UPS spot; the
                            // combined grant set must still fit it.
                            if let Err(v) = constraints.check(&combined) {
                                note_violations(
                                    slot,
                                    &[MarketInvariant::Capacity(v)],
                                    &mut invariant_violations,
                                );
                            }
                        }
                        if spot_sold > 0.0 {
                            price = Some(revenue_weighted_price / spot_sold);
                        }
                    } else {
                        let round = operator.run_slot(slot, &bids, market_meter);
                        slot_degraded |= round.degraded.is_some();
                        spot_available =
                            round.predicted.total_pdu().min(round.predicted.ups).value();
                        let mut alloc = round.outcome.into_allocation();
                        comms.deliver_broadcasts(&topology, &mut alloc, bidders.iter().copied());
                        if validate {
                            rack_bids.clear();
                            rack_bids
                                .extend(bids.iter().flat_map(|b| b.rack_bids().iter().cloned()));
                            note_violations(
                                slot,
                                &check_allocation(&round.constraints, &alloc, &rack_bids, true),
                                &mut invariant_violations,
                            );
                        }
                        for (rack, grant) in alloc.iter() {
                            if grant > Watts::ZERO {
                                bank.grant_spot(slot, rack, grant)
                                    .expect("cleared grants respect rack headroom");
                                payments[rack.index()] =
                                    alloc.payment_for(rack, scenario.slot).usd();
                            }
                        }
                        spot_sold = alloc.total().value();
                        if spot_sold > 0.0 {
                            price = Some(alloc.price().per_kw_hour_value());
                        }
                    }
                }
                Mode::MaxPerf => {
                    gains.clear();
                    wanting.clear();
                    for agent in agents.iter_mut() {
                        if agent.wants_spot() {
                            let env = agent.gain_curve().concave_envelope();
                            if let Ok(gain) = ConcaveGain::from_points(env.points()) {
                                wanting.push(agent.rack());
                                gains.insert(agent.rack(), gain);
                            }
                        }
                    }
                    let predicted = operator.predictor().predict(
                        &topology,
                        market_meter,
                        wanting.iter().copied(),
                    );
                    spot_available = predicted.total_pdu().min(predicted.ups).value();
                    let constraints =
                        ConstraintSet::new(&topology, predicted.pdu.clone(), predicted.ups);
                    let grants = max_perf_allocate(&gains, &constraints);
                    if validate {
                        if let Err(v) = constraints.check(&grants) {
                            note_violations(
                                slot,
                                &[MarketInvariant::Capacity(v)],
                                &mut invariant_violations,
                            );
                        }
                    }
                    for (&rack, &grant) in &grants {
                        if grant > Watts::ZERO {
                            bank.grant_spot(slot, rack, grant)
                                .expect("maxperf grants respect rack headroom");
                            spot_sold += grant.value();
                        }
                    }
                }
            }

            // Graceful degradation: when overloads were observed last
            // slot, the cap controller sheds spot first (guaranteed
            // capacity is only capped while a held level's base load
            // alone exceeds its capacity), with hysteresis on release.
            if let Some(cap) = cap.as_mut() {
                cap.note_emergencies(slot, &last_emergencies);
                let outcome = cap.enforce(slot, &prev_base_pdu, &mut bank);
                for trim in &outcome.trims {
                    spot_sold -= (trim.old_spot - trim.new_spot).value();
                    let i = trim.rack.index();
                    if trim.old_spot > Watts::ZERO {
                        payments[i] *= trim.new_spot.value() / trim.old_spot.value();
                    }
                }
                if !outcome.is_noop() {
                    slot_degraded = true;
                }
            }

            // Tenants execute under their budgets; the meter records the
            // *observed* draw (subject to meter faults) while `true_draw`
            // keeps the physical one.
            let mut tenant_metrics = Vec::with_capacity(agents.len());
            for agent in agents.iter_mut() {
                let budget = bank.budget(agent.rack());
                let out = agent.run_slot(budget);
                if record_observed(
                    &mut meter,
                    &plan,
                    faults_active,
                    slot,
                    agent.rack(),
                    out.draw,
                ) {
                    faults_injected += 1;
                }
                true_draw[agent.rack().index()] = out.draw.clamp_non_negative();
                let (perf_index, slo_met) = match out.performance {
                    spotdc_tenants::Performance::Latency { slo_met, .. } => {
                        (out.performance.index(), Some(slo_met))
                    }
                    spotdc_tenants::Performance::Throughput { .. } => {
                        (out.performance.index(), None)
                    }
                };
                tenant_metrics.push(TenantSlotMetrics {
                    wanted: agent.wants_spot(),
                    grant: bank.spot_grant(agent.rack()).value(),
                    draw: out.draw.value(),
                    perf_index,
                    slo_met,
                    cost_rate: out.cost_rate,
                    payment: payments[agent.rack().index()],
                });
            }
            for (j, other) in scenario.others.iter().enumerate() {
                let draw = other_traces[j][t].min(other.subscription);
                if record_observed(&mut meter, &plan, faults_active, slot, other.rack, draw) {
                    faults_injected += 1;
                }
                true_draw[other.rack.index()] = draw.clamp_non_negative();
            }

            // Emergencies and the per-slot record reflect *physical*
            // power. With faults off the meter holds exactly the true
            // draws, so reading it back preserves the historical
            // accumulation order bit for bit.
            let (pdu_power, ups_power) = if faults_active {
                let mut per_pdu = vec![Watts::ZERO; topology.pdu_count()];
                let mut total = Watts::ZERO;
                for (i, &d) in true_draw.iter().enumerate() {
                    per_pdu[rack_pdu[i]] += d;
                    total += d;
                }
                (per_pdu, total)
            } else {
                (meter.pdu_powers(), meter.ups_power())
            };
            let found = emergencies.observe(slot, &pdu_power);
            if slot_degraded {
                degraded_slots += 1;
            }
            if spotdc_telemetry::is_enabled() && spot_available > 0.0 {
                // The predictor forecast `spot_available` from last
                // slot's meter readings; compare against the headroom
                // actually realized this slot (unused UPS capacity plus
                // the spot capacity that was sold and consumed).
                let realized = (topology.ups_capacity() - ups_power).value() + spot_sold;
                prediction_error_sum += (spot_available - realized).abs();
                prediction_error_count += 1;
                spotdc_telemetry::registry().set_gauge(
                    "spotdc_prediction_error_watts",
                    prediction_error_sum / prediction_error_count as f64,
                );
            }
            records.push(SlotRecord {
                slot: t as u64,
                price,
                spot_available,
                spot_sold,
                ups_power: ups_power.value(),
                pdu_power: pdu_power.iter().map(|w| w.value()).collect(),
                tenants: tenant_metrics,
            });
            // Roll slot state forward for next slot's degradation paths.
            last_emergencies = found;
            if cap.is_some() {
                prev_base_pdu.iter_mut().for_each(|w| *w = Watts::ZERO);
                for (i, &d) in true_draw.iter().enumerate() {
                    prev_base_pdu[rack_pdu[i]] += d.min(guaranteed[i]);
                }
            }
            if track_prev_meter {
                prev_meter = Some(meter.clone());
            }
            let _ = slot_hours; // payments already per-slot
        }

        SimReport {
            records,
            slot: scenario.slot,
            subscriptions: agents.iter().map(|a| a.reserved()).collect(),
            headrooms: agents.iter().map(|a| a.headroom()).collect(),
            total_subscribed: topology.total_leased(),
            ups_capacity: topology.ups_capacity(),
            // Overloads inside the ±5 % breaker-tolerance band are
            // transient overshoots the hardware absorbs; only worse
            // ones count as emergencies (Section III-C).
            emergencies: emergencies
                .events()
                .iter()
                .filter(|e| e.severity() > 0.05)
                .count(),
            transient_overshoots: emergencies
                .events()
                .iter()
                .filter(|e| e.severity() <= 0.05)
                .count(),
            degraded_slots,
            invariant_violations,
            faults_injected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::Billing;

    fn run(mode: Mode, slots: u64) -> SimReport {
        Simulation::new(Scenario::testbed(11), EngineConfig::new(mode)).run(slots)
    }

    #[test]
    fn powercapped_never_sells_spot() {
        let r = run(Mode::PowerCapped, 200);
        assert!(r.records.iter().all(|rec| rec.spot_sold == 0.0));
        assert_eq!(r.spot_revenue_rate(), 0.0);
    }

    #[test]
    fn spotdc_sells_spot_and_earns_revenue() {
        let r = run(Mode::SpotDc, 400);
        assert!(r.avg_spot_sold() > 0.0, "no spot sold in 400 slots");
        assert!(r.spot_revenue_rate() > 0.0);
        let profit = r.profit(&Billing::paper_defaults());
        assert!(profit.extra_percent() > 0.0);
    }

    #[test]
    fn maxperf_allocates_without_revenue() {
        let r = run(Mode::MaxPerf, 400);
        assert!(r.avg_spot_sold() > 0.0);
        assert_eq!(r.spot_revenue_rate(), 0.0);
        assert!(r.records.iter().all(|rec| rec.price.is_none()));
    }

    #[test]
    fn spot_improves_wanting_tenants_performance() {
        let pc = run(Mode::PowerCapped, 400);
        let dc = run(Mode::SpotDc, 400);
        // Average over wanting slots, across all tenants that ever want.
        let mut improved = 0;
        let mut total = 0;
        for i in 0..pc.tenant_count() {
            let base = pc.tenant_avg_perf(i, true);
            let spot = dc.tenant_avg_perf(i, true);
            if base > 0.0 {
                total += 1;
                if spot > base * 1.01 {
                    improved += 1;
                }
            }
        }
        assert!(
            total >= 6,
            "expected most tenants to want spot at least once"
        );
        assert!(
            improved * 2 > total,
            "only {improved}/{total} tenants improved"
        );
    }

    #[test]
    fn maxperf_performance_at_least_spotdc() {
        let dc = run(Mode::SpotDc, 300);
        let mp = run(Mode::MaxPerf, 300);
        let perf = |r: &SimReport| -> f64 {
            (0..r.tenant_count())
                .map(|i| r.tenant_avg_perf(i, true))
                .sum::<f64>()
        };
        // MaxPerf ignores prices and should allocate at least as much.
        assert!(mp.avg_spot_sold() >= dc.avg_spot_sold() * 0.9);
        assert!(perf(&mp) >= perf(&dc) * 0.95);
    }

    #[test]
    fn grants_respect_headroom_always() {
        let r = run(Mode::SpotDc, 300);
        for rec in &r.records {
            for (i, t) in rec.tenants.iter().enumerate() {
                assert!(
                    t.grant <= r.headrooms[i].value() + 1e-6,
                    "grant {} exceeds headroom at slot {}",
                    t.grant,
                    rec.slot
                );
            }
        }
    }

    #[test]
    fn spot_never_adds_emergencies() {
        let pc = run(Mode::PowerCapped, 500);
        let dc = run(Mode::SpotDc, 500);
        assert!(
            dc.emergencies <= pc.emergencies + 1,
            "SpotDC {} vs PowerCapped {}",
            dc.emergencies,
            pc.emergencies
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(Mode::SpotDc, 100);
        let b = run(Mode::SpotDc, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn comms_losses_reduce_sales() {
        let clean = run(Mode::SpotDc, 300);
        let lossy = Simulation::new(
            Scenario::testbed(11),
            EngineConfig {
                bid_loss: 0.5,
                ..EngineConfig::new(Mode::SpotDc)
            },
        )
        .run(300);
        assert!(lossy.avg_spot_sold() < clean.avg_spot_sold());
    }
}
