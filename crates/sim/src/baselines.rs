//! The three operating modes the paper compares (Section V-B).

use serde::{Deserialize, Serialize};

/// How the data center allocates power each slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// The status quo: no spot capacity is offered; every tenant caps
    /// its power at its guaranteed capacity at all times. Used as the
    /// normalization reference for cost, profit and performance.
    PowerCapped,
    /// The paper's proposal: demand-function bidding and uniform-price
    /// clearing allocate spot capacity every slot.
    SpotDc,
    /// The owner-operated upper bound: the operator knows every
    /// tenant's gain curve and allocates spot capacity to maximize
    /// total performance gain, with no payments (power routing \[9\]).
    MaxPerf,
}

impl Mode {
    /// Whether this mode sells spot capacity for money.
    #[must_use]
    pub fn has_market(self) -> bool {
        matches!(self, Mode::SpotDc)
    }

    /// Whether this mode allocates spot capacity at all.
    #[must_use]
    pub fn allocates_spot(self) -> bool {
        !matches!(self, Mode::PowerCapped)
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::PowerCapped => write!(f, "PowerCapped"),
            Mode::SpotDc => write!(f, "SpotDC"),
            Mode::MaxPerf => write!(f, "MaxPerf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(!Mode::PowerCapped.allocates_spot());
        assert!(Mode::SpotDc.allocates_spot() && Mode::SpotDc.has_market());
        assert!(Mode::MaxPerf.allocates_spot() && !Mode::MaxPerf.has_market());
    }

    #[test]
    fn mode_display() {
        assert_eq!(Mode::SpotDc.to_string(), "SpotDC");
    }
}
