//! Event sinks: where serialized telemetry events go.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;

/// A destination for structured telemetry events.
///
/// Implementations must be cheap enough to sit on the per-slot path and
/// thread-safe (the simulator is single-threaded today, but parameter
/// sweeps run engines on worker threads against one process-global
/// sink).
pub trait EventSink: Send + Sync {
    /// Records one event.
    fn emit(&self, event: &Event);

    /// Records one event carrying the emitting thread's run-id tag
    /// (see `run_scope` in the crate root). The default drops the tag
    /// and forwards to [`EventSink::emit`]; sinks with an attributable
    /// wire format ([`FileSink`]) override it.
    fn emit_tagged(&self, run: Option<&str>, event: &Event) {
        let _ = run;
        self.emit(event);
    }

    /// Flushes any buffered output. The default is a no-op.
    fn flush(&self) {}
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Buffers events in memory; tests and the simulation engine read them
/// back with [`VecSink::snapshot`] or [`VecSink::take`].
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<Event>>,
}

impl VecSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Clones out the events recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().clone()
    }

    /// Removes and returns the events recorded so far.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.lock())
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl EventSink for VecSink {
    fn emit(&self, event: &Event) {
        self.lock().push(event.clone());
    }
}

/// Appends events as JSON lines to a file (the `telemetry.jsonl`
/// artifact the repro binary ships).
#[derive(Debug)]
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(FileSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BufWriter<File>> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl EventSink for FileSink {
    fn emit(&self, event: &Event) {
        // Telemetry must never take the simulation down: I/O errors
        // (disk full, closed fd) drop the event.
        let mut writer = self.lock();
        let _ = writeln!(writer, "{}", event.to_jsonl());
    }

    fn emit_tagged(&self, run: Option<&str>, event: &Event) {
        let mut writer = self.lock();
        let _ = writeln!(writer, "{}", event.to_jsonl_tagged(run));
    }

    fn flush(&self) {
        let _ = self.lock().flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use spotdc_units::{MonotonicNanos, Slot};

    use super::*;

    fn event(slot: u64) -> Event {
        Event::SlotCleared {
            slot: Slot::new(slot),
            at: MonotonicNanos::from_raw(slot * 10),
            price_per_kw_hour: 0.2,
            sold_watts: 100.0,
            revenue_rate_per_hour: 0.02,
            candidates_evaluated: 50,
        }
    }

    #[test]
    fn vec_sink_buffers_and_takes() {
        let sink = VecSink::new();
        assert!(sink.is_empty());
        sink.emit(&event(1));
        sink.emit(&event(2));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.snapshot().len(), 2);
        let taken = sink.take();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].slot(), Slot::new(1));
        assert!(sink.is_empty());
    }

    #[test]
    fn file_sink_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join("spotdc-telemetry-file-sink-test.jsonl");
        {
            let sink = FileSink::create(&path).unwrap();
            sink.emit(&event(7));
            sink.emit(&event(8));
            sink.flush();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> = body
            .lines()
            .map(|l| Event::from_jsonl(l).expect(l))
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].slot(), Slot::new(8));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_sink_writes_run_tags() {
        let path = std::env::temp_dir().join("spotdc-telemetry-file-sink-tagged-test.jsonl");
        {
            let sink = FileSink::create(&path).unwrap();
            sink.emit_tagged(Some("fig10"), &event(1));
            sink.emit_tagged(None, &event(2));
            sink.flush();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"run\":\"fig10\""), "line: {}", lines[0]);
        assert!(!lines[1].contains("\"run\""), "line: {}", lines[1]);
        for line in lines {
            Event::from_jsonl(line).expect(line);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vec_sink_default_emit_tagged_keeps_the_event() {
        let sink = VecSink::new();
        sink.emit_tagged(Some("fig11"), &event(3));
        assert_eq!(sink.take(), vec![event(3)]);
    }

    #[test]
    fn null_sink_discards() {
        NullSink.emit(&event(1));
        NullSink.flush();
    }
}
