//! In-process crash-recovery end-to-end tests.
//!
//! `scripts/crash_harness` SIGKILLs a real child process; these tests
//! cover the same protocol deterministically and portably: stop a
//! durable run at an arbitrary slot (the `stop_after` hook — equivalent
//! to a kill at a slot boundary, since the journal is flushed per
//! slot), damage the on-disk state the way a crash or bad storage
//! would, resume, and require the final report to be **equal** to an
//! uninterrupted cold run — the invariant the whole durability layer
//! exists to uphold.

use std::fs;
use std::path::{Path, PathBuf};

use spotdc_sim::engine::{DurabilityConfig, EngineConfig, Simulation};
use spotdc_sim::{Mode, Scenario, SimReport};

const SEED: u64 = 7;
const SLOTS: u64 = 24;
const EVERY: u64 = 5;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spotdc-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn durable_config(mode: Mode, dir: &Path) -> EngineConfig {
    EngineConfig {
        durability: DurabilityConfig {
            dir: Some(dir.to_path_buf()),
            checkpoint_every: EVERY,
            ..DurabilityConfig::default()
        },
        ..EngineConfig::new(mode)
    }
}

fn cold(mode: Mode) -> SimReport {
    Simulation::new(Scenario::testbed(SEED), EngineConfig::new(mode)).run(SLOTS)
}

fn stop_at(mode: Mode, dir: &Path, k: u64) {
    let mut config = durable_config(mode, dir);
    config.durability.stop_after = Some(k);
    let outcome = Simulation::new(Scenario::testbed(SEED), config)
        .run_durable(SLOTS)
        .expect("stopped run");
    assert_eq!(outcome.stopped_after, Some(k));
}

fn resume(mode: Mode, dir: &Path) -> spotdc_sim::DurableOutcome {
    let mut config = durable_config(mode, dir);
    config.durability.resume = true;
    Simulation::new(Scenario::testbed(SEED), config)
        .run_durable(SLOTS)
        .expect("resumed run")
}

/// The satellite sweep: for every mode and every interruption slot
/// `k` in `1..SLOTS`, stop-then-resume must reproduce the cold report
/// exactly — whether `k` lands on a checkpoint boundary, one past it,
/// or deep into a journal interval.
#[test]
fn resume_at_every_slot_matches_cold_run() {
    for mode in [Mode::PowerCapped, Mode::SpotDc, Mode::MaxPerf] {
        let golden = cold(mode);
        for k in 1..SLOTS {
            let dir = temp_dir(&format!("sweep-{mode:?}-{k}"));
            stop_at(mode, &dir, k);
            let resumed = resume(mode, &dir);
            let recovery = resumed.recovery.as_ref().expect("recovery info");
            assert_eq!(
                recovery.snapshot_slot,
                (k >= EVERY).then_some((k / EVERY) * EVERY),
                "mode {mode:?} k {k}"
            );
            assert_eq!(resumed.report, golden, "mode {mode:?} resumed at slot {k}");
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// A torn journal tail — the partial record a SIGKILL mid-append
/// leaves — is truncated, reported, and recovered around.
#[test]
fn torn_journal_tail_recovers_byte_identically() {
    let golden = cold(Mode::SpotDc);
    let dir = temp_dir("torn");
    // Stop at 8: snapshot at 5, journal holds slots 5, 6, 7.
    stop_at(Mode::SpotDc, &dir, 8);
    let wal = dir.join("journal.wal");
    let bytes = fs::read(&wal).expect("journal exists");
    fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

    let resumed = resume(Mode::SpotDc, &dir);
    let recovery = resumed.recovery.expect("recovery info");
    let damage = recovery.truncated.expect("tail damage reported");
    assert_eq!(damage.reason, "torn");
    assert!(damage.dropped_bytes > 0);
    assert_eq!(recovery.snapshot_slot, Some(5));
    // Slot 7's record was torn off; only 5 and 6 replay from the
    // journal, 7 re-simulates in the main loop.
    assert_eq!(recovery.replayed_slots, 2);
    assert_eq!(resumed.report, golden);
    let _ = fs::remove_dir_all(&dir);
}

/// A bit flip inside a complete journal record — storage corruption,
/// not a crash artifact — is caught by the CRC, classified as
/// "corrupt", and recovered around identically.
#[test]
fn corrupt_journal_record_recovers_byte_identically() {
    let golden = cold(Mode::SpotDc);
    let dir = temp_dir("flip");
    stop_at(Mode::SpotDc, &dir, 8);
    let wal = dir.join("journal.wal");
    let mut bytes = fs::read(&wal).expect("journal exists");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    fs::write(&wal, &bytes).unwrap();

    let resumed = resume(Mode::SpotDc, &dir);
    let recovery = resumed.recovery.expect("recovery info");
    let damage = recovery.truncated.expect("tail damage reported");
    assert_eq!(damage.reason, "corrupt");
    assert!(damage.dropped_bytes > 0);
    assert_eq!(recovery.replayed_slots, 2);
    assert_eq!(resumed.report, golden);
    let _ = fs::remove_dir_all(&dir);
}

/// A corrupt newest checkpoint falls back to its retained predecessor;
/// the journal (which restarted at the newest checkpoint) then starts
/// ahead of the snapshot, and determinism re-simulates the gap.
#[test]
fn corrupt_newest_checkpoint_falls_back_to_predecessor() {
    let golden = cold(Mode::SpotDc);
    let dir = temp_dir("ckpt-fallback");
    // Stop at 13: checkpoints at 5 and 10 both retained, journal holds
    // slots 10, 11, 12.
    stop_at(Mode::SpotDc, &dir, 13);
    let newest = dir.join("ckpt-0000000010.bin");
    let mut bytes = fs::read(&newest).expect("newest checkpoint exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&newest, &bytes).unwrap();

    let resumed = resume(Mode::SpotDc, &dir);
    let recovery = resumed.recovery.expect("recovery info");
    assert_eq!(recovery.snapshot_slot, Some(5));
    // Slots 5..10 re-simulate the gap, 10..13 replay under journal
    // verification.
    assert_eq!(recovery.replayed_slots, 8);
    assert_eq!(resumed.report, golden);
    let _ = fs::remove_dir_all(&dir);
}

/// Every retained checkpoint corrupt: recovery degrades all the way to
/// a cold start plus journal-gap re-simulation, and still reproduces
/// the golden report.
#[test]
fn all_checkpoints_corrupt_degrades_to_cold_replay() {
    let golden = cold(Mode::SpotDc);
    let dir = temp_dir("ckpt-all-bad");
    stop_at(Mode::SpotDc, &dir, 13);
    for name in ["ckpt-0000000005.bin", "ckpt-0000000010.bin"] {
        let path = dir.join(name);
        let mut bytes = fs::read(&path).expect("checkpoint exists");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
    }

    let resumed = resume(Mode::SpotDc, &dir);
    let recovery = resumed.recovery.expect("recovery info");
    assert_eq!(recovery.snapshot_slot, None);
    assert_eq!(recovery.replayed_slots, 13);
    assert_eq!(resumed.report, golden);
    let _ = fs::remove_dir_all(&dir);
}

/// Interrupting an interrupted run: two stops at different depths with
/// a resume between them still land on the golden report.
#[test]
fn double_interruption_still_recovers() {
    let golden = cold(Mode::MaxPerf);
    let dir = temp_dir("double");
    stop_at(Mode::MaxPerf, &dir, 7);
    // Resume but stop again further in.
    let mut config = durable_config(Mode::MaxPerf, &dir);
    config.durability.resume = true;
    config.durability.stop_after = Some(9);
    let second = Simulation::new(Scenario::testbed(SEED), config)
        .run_durable(SLOTS)
        .expect("second leg");
    assert_eq!(second.stopped_after, Some(16));

    let resumed = resume(Mode::MaxPerf, &dir);
    assert_eq!(resumed.report, golden);
    let _ = fs::remove_dir_all(&dir);
}
