//! Uniform-price market clearing (Eq. 1 subject to Eqns. 2–4).
//!
//! The operator chooses one price `q` maximizing revenue
//! `q · Σ_r D_r(q)` over prices at which the induced demands fit every
//! capacity constraint. Because all demand functions are non-increasing
//! in price, the feasible set is upward-closed: raising the price only
//! sheds demand, so a sufficiently high price is always feasible and
//! selling spot capacity can never create a power emergency.
//!
//! Two search strategies are provided:
//!
//! * [`ClearingAlgorithm::GridScan`] — the paper's method: evaluate
//!   every multiple of a configurable price step (0.1–1 ¢/kW in the
//!   paper) up to the highest bid ceiling. Simple, predictable,
//!   sub-second even at 15 000 racks (Fig. 7b).
//! * [`ClearingAlgorithm::KinkSearch`] — an exact refinement: revenue
//!   is piece-wise quadratic in `q` between the finitely many *kink
//!   prices* of the aggregate (headroom-clipped) demand, so the optimum
//!   lies at a kink, just above a discontinuity, or at an interior
//!   quadratic vertex — all enumerable in `O(K log K)`. Used to
//!   validate the grid scan and as the ablation in DESIGN.md.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use spotdc_units::{Price, Slot, Watts};

use crate::allocation::SpotAllocation;
use crate::bid::RackBid;
use crate::constraints::ConstraintSet;
use crate::demand::DemandBid;

/// Offset used to probe "just above" a discontinuity price.
const JUST_ABOVE: f64 = 1e-9;

/// Which price-search strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClearingAlgorithm {
    /// Evaluate every multiple of the configured step (paper default).
    GridScan,
    /// Enumerate demand kinks and quadratic revenue vertices.
    KinkSearch,
}

/// Configuration for the clearing search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClearingConfig {
    /// The search strategy.
    pub algorithm: ClearingAlgorithm,
    /// Grid step (ignored by [`ClearingAlgorithm::KinkSearch`]).
    pub price_step: Price,
}

impl ClearingConfig {
    /// The paper's default: grid scan at 0.1 ¢/kW/h.
    #[must_use]
    pub fn grid(step: Price) -> Self {
        ClearingConfig {
            algorithm: ClearingAlgorithm::GridScan,
            price_step: step,
        }
    }

    /// Exact kink-based search.
    #[must_use]
    pub fn kink_search() -> Self {
        ClearingConfig {
            algorithm: ClearingAlgorithm::KinkSearch,
            price_step: Price::cents_per_kw_hour(0.1),
        }
    }
}

impl Default for ClearingConfig {
    fn default() -> Self {
        ClearingConfig::grid(Price::cents_per_kw_hour(0.1))
    }
}

/// The result of clearing one slot's market.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketOutcome {
    allocation: SpotAllocation,
    /// Revenue rate in $/hour at the clearing price.
    revenue_rate: f64,
    /// Number of candidate prices evaluated (search-cost metric).
    candidates: usize,
}

impl MarketOutcome {
    /// The resulting spot allocation (possibly empty).
    #[must_use]
    pub fn allocation(&self) -> &SpotAllocation {
        &self.allocation
    }

    /// Consumes the outcome, yielding the allocation.
    #[must_use]
    pub fn into_allocation(self) -> SpotAllocation {
        self.allocation
    }

    /// The uniform clearing price.
    #[must_use]
    pub fn price(&self) -> Price {
        self.allocation.price()
    }

    /// Total spot capacity sold.
    #[must_use]
    pub fn sold(&self) -> Watts {
        self.allocation.total()
    }

    /// The operator's revenue rate at the clearing price, $/hour.
    #[must_use]
    pub fn revenue_rate(&self) -> f64 {
        self.revenue_rate
    }

    /// Number of candidate prices the search evaluated.
    #[must_use]
    pub fn candidates_evaluated(&self) -> usize {
        self.candidates
    }
}

/// The market-clearing engine.
///
/// # Examples
///
/// ```
/// use spotdc_core::{demand::StepBid, ClearingConfig, ConstraintSet, MarketClearing, RackBid};
/// use spotdc_power::topology::TopologyBuilder;
/// use spotdc_units::{Price, RackId, Slot, TenantId, Watts};
///
/// let topo = TopologyBuilder::new(Watts::new(300.0))
///     .pdu(Watts::new(200.0))
///     .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
///     .build()?;
/// let cs = ConstraintSet::new(&topo, vec![Watts::new(50.0)], Watts::new(50.0));
/// let bids = vec![RackBid::new(
///     RackId::new(0),
///     StepBid::new(Watts::new(40.0), Price::per_kw_hour(0.3))?.into(),
/// )];
/// let outcome = MarketClearing::new(ClearingConfig::default()).clear(Slot::ZERO, &bids, &cs);
/// // A lone step bid clears at its own price cap.
/// assert_eq!(outcome.sold(), Watts::new(40.0));
/// assert!((outcome.price().per_kw_hour_value() - 0.3).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MarketClearing {
    config: ClearingConfig,
    /// Pool of reusable candidate scratch buffers, one per concurrent
    /// clearing. Each worker grabs the first free slot with `try_lock`
    /// and holds it for the whole clearing, so parallel per-PDU clears
    /// never serialize on a shared lock; when all slots are busy a
    /// stack-local scratch is used instead (correct, just cold).
    /// A poisoned slot — a panic mid-clearing — is simply never
    /// reacquired: its cached key/candidate state may be torn, and
    /// abandoning it is cheaper than proving it consistent.
    scratch: [Mutex<Scratch>; SCRATCH_SLOTS],
}

/// Number of scratch buffers in the pool; clears beyond this many at
/// once fall back to a fresh stack-local buffer.
const SCRATCH_SLOTS: usize = 8;

/// One worker's reusable clearing state: the candidate-price buffer and
/// the market fingerprint it was generated for (the cross-slot cache).
#[derive(Debug, Default)]
struct Scratch {
    /// Fingerprint of the market `candidates` was generated for.
    key: Vec<u64>,
    /// Staging buffer for the current market's fingerprint.
    next_key: Vec<u64>,
    /// Cached candidate prices.
    candidates: Vec<Price>,
}

impl Clone for MarketClearing {
    fn clone(&self) -> Self {
        // Scratch is per-instance cache, not state: clones start empty.
        MarketClearing::new(self.config)
    }
}

impl Default for MarketClearing {
    fn default() -> Self {
        MarketClearing::new(ClearingConfig::default())
    }
}

impl MarketClearing {
    /// Creates a clearing engine with the given configuration.
    #[must_use]
    pub fn new(config: ClearingConfig) -> Self {
        MarketClearing {
            config,
            scratch: std::array::from_fn(|_| Mutex::new(Scratch::default())),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ClearingConfig {
        &self.config
    }

    /// Clears the market for `slot`: finds the revenue-maximizing
    /// feasible uniform price and the per-rack grants it induces.
    ///
    /// Bids whose demand is identically zero are ignored. If no bid is
    /// present (or no positive-revenue feasible price exists) the
    /// returned outcome carries an empty allocation.
    ///
    /// Candidate prices are cached across calls: when the live-bid set
    /// (bid parameters, headrooms, spot capacities) is bit-identical to
    /// the market a scratch buffer last cleared, candidate generation
    /// is skipped and the cached prices are re-evaluated against the
    /// current constraints. The cache key is the *full* fingerprint of
    /// every input candidate generation reads — compared by equality,
    /// not by hash — so a hit provably regenerates the same candidate
    /// list and the outcome is byte-identical either way.
    #[must_use]
    pub fn clear(
        &self,
        slot: Slot,
        bids: &[RackBid],
        constraints: &ConstraintSet,
    ) -> MarketOutcome {
        let _span = spotdc_telemetry::span!("clearing", slot = slot);
        let live: Vec<&RackBid> = bids.iter().filter(|b| !b.demand().is_null()).collect();
        if live.is_empty() {
            let outcome = MarketOutcome {
                allocation: SpotAllocation::none(slot),
                revenue_rate: 0.0,
                candidates: 0,
            };
            if spotdc_telemetry::is_enabled() {
                self.record_outcome(slot, &outcome, constraints);
            }
            return outcome;
        }
        // Grab the first free scratch buffer; fall back to a fresh
        // stack-local one when every slot is busy (or poisoned).
        let mut fallback = None;
        let mut guard = self.scratch.iter().find_map(|m| m.try_lock().ok());
        let scratch: &mut Scratch = match guard.as_deref_mut() {
            Some(s) => s,
            None => fallback.get_or_insert_with(Scratch::default),
        };
        scratch.next_key.clear();
        self.fingerprint(&live, constraints, &mut scratch.next_key);
        if scratch.candidates.is_empty() || scratch.next_key != scratch.key {
            scratch.candidates.clear();
            match self.config.algorithm {
                ClearingAlgorithm::GridScan => {
                    self.grid_candidates(&live, &mut scratch.candidates);
                }
                ClearingAlgorithm::KinkSearch => {
                    self.kink_candidates(&live, constraints, &mut scratch.candidates);
                }
            }
            std::mem::swap(&mut scratch.key, &mut scratch.next_key);
        }
        let evaluated = scratch.candidates.len();
        let mut best: Option<(Price, f64)> = None;
        for &q in &scratch.candidates {
            let demands = live.iter().map(|b| (b.rack(), b.demand_at(q)));
            let Some(total) = constraints.feasible_total(demands) else {
                continue;
            };
            let rate = q.per_kw_hour_value() * total.kilowatts();
            match best {
                Some((_, best_rate)) if rate <= best_rate + 1e-12 => {}
                _ => best = Some((q, rate)),
            }
        }
        let outcome = match best {
            Some((price, rate)) if rate > 0.0 => {
                let grants = live
                    .iter()
                    .map(|b| {
                        let d = b.demand_at(price).min(constraints.rack_headroom(b.rack()));
                        (b.rack(), d)
                    })
                    .collect();
                MarketOutcome {
                    allocation: SpotAllocation::new(slot, price, grants),
                    revenue_rate: rate,
                    candidates: evaluated,
                }
            }
            _ => MarketOutcome {
                allocation: SpotAllocation::none(slot),
                revenue_rate: 0.0,
                candidates: evaluated,
            },
        };
        if spotdc_telemetry::is_enabled() {
            self.record_outcome(slot, &outcome, constraints);
        }
        outcome
    }

    /// Writes the full fingerprint of everything candidate generation
    /// reads into `out`: algorithm, grid step, UPS spot, and per live
    /// bid its rack, headroom, PDU (with that PDU's spot capacity), and
    /// every demand-curve parameter, all as exact `f64` bit patterns.
    /// Heat zones and phase bounds are deliberately absent — candidate
    /// generation never reads them (only per-candidate feasibility
    /// does, and that is re-evaluated on every call).
    fn fingerprint(&self, bids: &[&RackBid], constraints: &ConstraintSet, out: &mut Vec<u64>) {
        out.push(match self.config.algorithm {
            ClearingAlgorithm::GridScan => 0,
            ClearingAlgorithm::KinkSearch => 1,
        });
        out.push(self.config.price_step.per_kw_hour_value().to_bits());
        out.push(constraints.ups_spot().value().to_bits());
        out.push(bids.len() as u64);
        for b in bids {
            out.push(b.rack().index() as u64);
            out.push(constraints.rack_headroom(b.rack()).value().to_bits());
            match constraints.pdu_of(b.rack()) {
                Some(p) => {
                    out.push(p.index() as u64);
                    out.push(constraints.pdu_spot(p).value().to_bits());
                }
                None => {
                    out.push(u64::MAX);
                    out.push(0);
                }
            }
            fingerprint_demand(b.demand(), out);
        }
    }

    /// Telemetry for one clearing: counters, the `SlotCleared` event,
    /// and `ConstraintBound` events for every capacity the winning
    /// allocation exhausted. Only called when telemetry is enabled.
    fn record_outcome(&self, slot: Slot, outcome: &MarketOutcome, constraints: &ConstraintSet) {
        use spotdc_telemetry::Event;
        use spotdc_units::MonotonicNanos;

        let registry = spotdc_telemetry::registry();
        registry.inc_counter("spotdc_slots_cleared_total", 1);
        registry.inc_counter(
            "spotdc_clearing_candidates_total",
            outcome.candidates as u64,
        );
        spotdc_telemetry::emit(Event::SlotCleared {
            slot,
            at: MonotonicNanos::now(),
            price_per_kw_hour: outcome.price().per_kw_hour_value(),
            sold_watts: outcome.sold().value(),
            revenue_rate_per_hour: outcome.revenue_rate(),
            candidates_evaluated: outcome.candidates as u64,
        });
        if outcome.allocation.is_empty() {
            return;
        }
        // A constraint is "bound" when the winning grants leave less
        // than a watt-scale epsilon of its spot capacity unused.
        let bound = |used: Watts, limit: Watts| -> bool {
            limit > Watts::ZERO && used.value() >= limit.value() - (1e-6 * limit.value() + 1e-9)
        };
        let mut per_pdu: std::collections::BTreeMap<usize, Watts> =
            std::collections::BTreeMap::new();
        let mut total = Watts::ZERO;
        for (rack, grant) in outcome.allocation.iter() {
            total += grant;
            if let Some(p) = constraints.pdu_of(rack) {
                *per_pdu.entry(p.index()).or_insert(Watts::ZERO) += grant;
            }
        }
        for (p, used) in per_pdu {
            let limit = constraints.pdu_spot(spotdc_units::PduId::new(p));
            if bound(used, limit) {
                spotdc_telemetry::emit(Event::ConstraintBound {
                    slot,
                    at: MonotonicNanos::now(),
                    constraint: format!("pdu-{p}"),
                    limit_watts: limit.value(),
                });
            }
        }
        if bound(total, constraints.ups_spot()) {
            spotdc_telemetry::emit(Event::ConstraintBound {
                slot,
                at: MonotonicNanos::now(),
                constraint: "ups".to_owned(),
                limit_watts: constraints.ups_spot().value(),
            });
        }
    }

    /// Grid candidates: every multiple of the step from 0 through the
    /// highest bid ceiling (inclusive, with one extra step beyond so a
    /// feasible zero-demand price always exists). Appends into `out`
    /// so the caller's buffer is recycled between clearings.
    fn grid_candidates(&self, bids: &[&RackBid], out: &mut Vec<Price>) {
        let ceiling = bids
            .iter()
            .map(|b| b.demand().price_ceiling())
            .fold(Price::ZERO, Price::max);
        let step = self.config.price_step.per_kw_hour_value().max(1e-9);
        let n = (ceiling.per_kw_hour_value() / step).ceil() as usize + 1;
        out.extend((0..=n).map(|i| Price::per_kw_hour(i as f64 * step)));
    }

    /// Kink candidates: all bids' kink prices (and headroom-clip
    /// crossings), each also probed "just above" (for discontinuities),
    /// plus the quadratic revenue vertex interior to each kink
    /// interval. Appends into `out` like [`Self::grid_candidates`].
    fn kink_candidates(
        &self,
        bids: &[&RackBid],
        constraints: &ConstraintSet,
        out: &mut Vec<Price>,
    ) {
        let mut kinks: Vec<f64> = vec![0.0];
        for b in bids {
            for k in b.demand().kink_prices() {
                kinks.push(k.per_kw_hour_value());
            }
            for k in clip_crossings(b.demand(), constraints.rack_headroom(b.rack())) {
                kinks.push(k.per_kw_hour_value());
            }
        }
        kinks.retain(|k| k.is_finite() && *k >= 0.0);
        kinks.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        kinks.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        // Clipped demand of one bid at price q.
        let clipped = |b: &RackBid, q: f64| -> f64 {
            b.demand_at(Price::per_kw_hour(q))
                .min(constraints.rack_headroom(b.rack()))
                .clamp_non_negative()
                .value()
        };
        let aggregate = |q: f64| -> f64 { bids.iter().map(|b| clipped(b, q)).sum() };

        // The constraint groups whose crossing prices matter: every PDU
        // with at least one bid, plus the UPS over all bids.
        let mut groups: Vec<(Vec<usize>, f64)> = Vec::new();
        {
            use std::collections::BTreeMap;
            let mut by_pdu: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (i, b) in bids.iter().enumerate() {
                if let Some(p) = constraints.pdu_of(b.rack()) {
                    by_pdu.entry(p.index()).or_default().push(i);
                }
            }
            for (p, members) in by_pdu {
                let cap = constraints.pdu_spot(spotdc_units::PduId::new(p)).value();
                groups.push((members, cap));
            }
            groups.push(((0..bids.len()).collect(), constraints.ups_spot().value()));
        }

        out.reserve(kinks.len() * 4);
        for (i, &k) in kinks.iter().enumerate() {
            out.push(Price::per_kw_hour(k));
            out.push(Price::per_kw_hour(k + JUST_ABOVE));
            if let Some(&next) = kinks.get(i + 1) {
                // Demand is linear on (k, next): fit D(q) = α − βq from
                // two interior probes.
                let q1 = k + (next - k) * 0.25;
                let q2 = k + (next - k) * 0.75;
                if (q2 - q1).abs() <= 1e-15 {
                    continue;
                }
                // Revenue vertex of the aggregate demand.
                let d1 = aggregate(q1);
                let d2 = aggregate(q2);
                let beta = (d1 - d2) / (q2 - q1);
                if beta > 1e-12 {
                    let alpha = d1 + beta * q1;
                    let vertex = alpha / (2.0 * beta);
                    if vertex > k && vertex < next {
                        out.push(Price::per_kw_hour(vertex));
                    }
                }
                // Feasibility-threshold prices: where each constraint
                // group's demand crosses its capacity, the feasible
                // region begins — the revenue optimum often sits there.
                for (members, cap) in &groups {
                    let g1: f64 = members.iter().map(|&m| clipped(bids[m], q1)).sum();
                    let g2: f64 = members.iter().map(|&m| clipped(bids[m], q2)).sum();
                    let gb = (g1 - g2) / (q2 - q1);
                    if gb > 1e-12 {
                        let ga = g1 + gb * q1;
                        let crossing = (ga - cap) / gb;
                        if crossing > k && crossing < next {
                            out.push(Price::per_kw_hour(crossing));
                            out.push(Price::per_kw_hour(crossing + JUST_ABOVE));
                        }
                    }
                }
            }
        }
    }
}

impl MarketClearing {
    /// Per-PDU pricing — the localized-price ablation of DESIGN.md.
    ///
    /// Instead of one uniform price, each PDU's bids are cleared
    /// independently against that PDU's spot capacity plus a
    /// proportional share of the UPS spot capacity. Localized prices
    /// can extract more revenue when PDUs are unevenly loaded, at the
    /// cost of the transparency/simplicity the paper argues for (and
    /// cross-PDU heat zones are only enforced within each sub-market).
    ///
    /// Returns one outcome per PDU that received bids, in PDU order.
    #[must_use]
    pub fn clear_per_pdu(
        &self,
        slot: Slot,
        bids: &[RackBid],
        constraints: &ConstraintSet,
    ) -> Vec<MarketOutcome> {
        let _span = spotdc_telemetry::span!("clear_per_pdu", slot = slot);
        self.per_pdu_submarkets(bids, constraints)
            .iter()
            .map(|(group, local)| self.clear(slot, group, local))
            .collect()
    }

    /// Decomposes a per-PDU pricing round into its independent
    /// sub-markets: one `(bids, constraints)` pair per PDU that
    /// received bids, in PDU order, each with the PDU's proportional
    /// share of the UPS spot capacity. Sub-markets share no mutable
    /// state, so callers may clear them in any order — or concurrently
    /// — and merge outcomes back in this order to reproduce
    /// [`Self::clear_per_pdu`] exactly.
    #[must_use]
    pub fn per_pdu_submarkets(
        &self,
        bids: &[RackBid],
        constraints: &ConstraintSet,
    ) -> Vec<(Vec<RackBid>, ConstraintSet)> {
        use std::collections::BTreeMap;
        let mut by_pdu: BTreeMap<usize, Vec<RackBid>> = BTreeMap::new();
        for b in bids {
            if let Some(p) = constraints.pdu_of(b.rack()) {
                by_pdu.entry(p.index()).or_default().push(b.clone());
            }
        }
        let spot_total: f64 = by_pdu
            .keys()
            .map(|&p| constraints.pdu_spot(spotdc_units::PduId::new(p)).value())
            .sum();
        by_pdu
            .into_iter()
            .map(|(p, group)| {
                let pdu_spot = constraints.pdu_spot(spotdc_units::PduId::new(p));
                let share = if spot_total > 0.0 {
                    constraints.ups_spot() * (pdu_spot.value() / spot_total)
                } else {
                    Watts::ZERO
                };
                let local = constraints
                    .clone()
                    .with_ups_spot(share.min(constraints.ups_spot()));
                (group, local)
            })
            .collect()
    }
}

/// Appends the exact parameters of one demand curve to a fingerprint:
/// a variant tag, then every defining value as an `f64` bit pattern
/// (length-prefixed for [`crate::demand::FullBid`]'s variable point list, so distinct
/// curves can never encode to the same sequence).
fn fingerprint_demand(d: &DemandBid, out: &mut Vec<u64>) {
    match d {
        DemandBid::Linear(b) => {
            out.push(1);
            out.push(b.d_max().value().to_bits());
            out.push(b.q_min().per_kw_hour_value().to_bits());
            out.push(b.d_min().value().to_bits());
            out.push(b.q_max().per_kw_hour_value().to_bits());
        }
        DemandBid::Step(b) => {
            out.push(2);
            out.push(b.demand().value().to_bits());
            out.push(b.price_cap().per_kw_hour_value().to_bits());
        }
        DemandBid::Full(b) => {
            out.push(3);
            out.push(b.points().len() as u64);
            for (q, w) in b.points() {
                out.push(q.per_kw_hour_value().to_bits());
                out.push(w.value().to_bits());
            }
        }
    }
}

/// Prices at which `bid`'s demand crosses the rack headroom `h` (the
/// clip `min(D(q), h)` introduces kinks there).
fn clip_crossings(bid: &DemandBid, headroom: Watts) -> Vec<Price> {
    let h = headroom.value();
    let mut out = Vec::new();
    match bid {
        DemandBid::Linear(b) => {
            let (d0, d1) = (b.d_max().value(), b.d_min().value());
            let (q0, q1) = (b.q_min().per_kw_hour_value(), b.q_max().per_kw_hour_value());
            if d0 > h && h > d1 && q1 > q0 && (d0 - d1) > 1e-15 {
                let q = q0 + (q1 - q0) * (d0 - h) / (d0 - d1);
                out.push(Price::per_kw_hour(q));
            }
        }
        DemandBid::Step(_) => {}
        DemandBid::Full(b) => {
            for w in b.points().windows(2) {
                let (q0, d0) = (w[0].0.per_kw_hour_value(), w[0].1.value());
                let (q1, d1) = (w[1].0.per_kw_hour_value(), w[1].1.value());
                if d0 > h && h > d1 && (d0 - d1) > 1e-15 && q1 > q0 {
                    let q = q0 + (q1 - q0) * (d0 - h) / (d0 - d1);
                    out.push(Price::per_kw_hour(q));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{FullBid, LinearBid, StepBid};
    use spotdc_power::topology::TopologyBuilder;
    use spotdc_units::{RackId, TenantId};

    /// One PDU with `pdu_spot` watts of spot, two racks with 60 W
    /// headroom each, generous UPS.
    fn constraints(pdu_spot: f64) -> ConstraintSet {
        let topo = TopologyBuilder::new(Watts::new(1000.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(60.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(60.0))
            .build()
            .unwrap();
        ConstraintSet::new(&topo, vec![Watts::new(pdu_spot)], Watts::new(pdu_spot))
    }

    fn linear(rack: usize, d_max: f64, q_min: f64, d_min: f64, q_max: f64) -> RackBid {
        RackBid::new(
            RackId::new(rack),
            LinearBid::new(
                Watts::new(d_max),
                Price::per_kw_hour(q_min),
                Watts::new(d_min),
                Price::per_kw_hour(q_max),
            )
            .unwrap()
            .into(),
        )
    }

    fn clear_with(algo: ClearingAlgorithm, bids: &[RackBid], cs: &ConstraintSet) -> MarketOutcome {
        let config = match algo {
            ClearingAlgorithm::GridScan => ClearingConfig::grid(Price::cents_per_kw_hour(0.01)),
            ClearingAlgorithm::KinkSearch => ClearingConfig::kink_search(),
        };
        MarketClearing::new(config).clear(Slot::ZERO, bids, cs)
    }

    #[test]
    fn empty_market_clears_empty() {
        let cs = constraints(100.0);
        let out = MarketClearing::default().clear(Slot::ZERO, &[], &cs);
        assert!(out.allocation().is_empty());
        assert_eq!(out.revenue_rate(), 0.0);
    }

    #[test]
    fn single_step_bid_clears_at_its_cap() {
        let cs = constraints(100.0);
        let bids = vec![RackBid::new(
            RackId::new(0),
            StepBid::new(Watts::new(40.0), Price::per_kw_hour(0.25))
                .unwrap()
                .into(),
        )];
        for algo in [ClearingAlgorithm::GridScan, ClearingAlgorithm::KinkSearch] {
            let out = clear_with(algo, &bids, &cs);
            assert!(
                (out.price().per_kw_hour_value() - 0.25).abs() < 1e-6,
                "{algo:?} price {}",
                out.price()
            );
            assert_eq!(out.sold(), Watts::new(40.0));
        }
    }

    #[test]
    fn linear_bid_clears_at_revenue_vertex_or_corner() {
        // A single linear bid D(q) = 100 − 250q on (0.1, 0.3] wide open
        // capacity: revenue q(125 - 250q)... compute the truth directly.
        let cs = constraints(1000.0);
        let bids = vec![linear(0, 60.0, 0.0, 0.0, 0.3)];
        // D(q) = 60(1 − q/0.3) = 60 − 200q; R = 60q − 200q²; vertex at
        // q* = 0.15, but rack headroom also 60 so no clipping. R(0.15)
        // = 60*.15 − 200*.0225 = 9 − 4.5 = 4.5 W·$/kW/h = 0.0045 $/h.
        let out = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
        assert!(
            (out.price().per_kw_hour_value() - 0.15).abs() < 1e-6,
            "price {}",
            out.price()
        );
        assert!((out.sold().value() - 30.0).abs() < 1e-6);
        // Grid scan with a fine step finds (nearly) the same optimum.
        let grid = clear_with(ClearingAlgorithm::GridScan, &bids, &cs);
        assert!(grid.revenue_rate() <= out.revenue_rate() + 1e-12);
        assert!(grid.revenue_rate() > out.revenue_rate() * 0.999);
    }

    #[test]
    fn tight_capacity_forces_price_up() {
        // Two 40 W step bids but only 50 W of PDU spot: serving both is
        // infeasible at any price ≤ 0.2 (both demand), so the market
        // must price out the cheap bidder.
        let cs = constraints(50.0);
        let bids = vec![
            RackBid::new(
                RackId::new(0),
                StepBid::new(Watts::new(40.0), Price::per_kw_hour(0.2))
                    .unwrap()
                    .into(),
            ),
            RackBid::new(
                RackId::new(1),
                StepBid::new(Watts::new(40.0), Price::per_kw_hour(0.5))
                    .unwrap()
                    .into(),
            ),
        ];
        for algo in [ClearingAlgorithm::GridScan, ClearingAlgorithm::KinkSearch] {
            let out = clear_with(algo, &bids, &cs);
            assert!(out.price() > Price::per_kw_hour(0.2), "{algo:?}");
            assert_eq!(out.sold(), Watts::new(40.0));
            assert_eq!(out.allocation().grant(RackId::new(0)), Watts::ZERO);
            assert_eq!(out.allocation().grant(RackId::new(1)), Watts::new(40.0));
        }
    }

    #[test]
    fn elastic_bids_are_partially_served_under_scarcity() {
        // LinearBid's whole point: under scarcity the price rises along
        // the sloped segment and demand shrinks to fit, rather than the
        // all-or-nothing StepBid outcome.
        let cs = constraints(50.0);
        let bids = vec![
            linear(0, 40.0, 0.05, 10.0, 0.4),
            linear(1, 40.0, 0.05, 10.0, 0.4),
        ];
        let out = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
        let g0 = out.allocation().grant(RackId::new(0));
        let g1 = out.allocation().grant(RackId::new(1));
        assert!(g0 > Watts::ZERO && g1 > Watts::ZERO, "both served");
        assert!(g0 + g1 <= Watts::new(50.0 + 1e-6), "fits capacity");
        assert!(g0 < Watts::new(40.0), "partially served");
    }

    #[test]
    fn more_spot_capacity_never_raises_the_price() {
        let bids = vec![
            linear(0, 50.0, 0.05, 10.0, 0.4),
            linear(1, 50.0, 0.10, 20.0, 0.5),
        ];
        let mut last_price = f64::INFINITY;
        for spot in [30.0, 60.0, 90.0, 120.0] {
            let cs = constraints(spot);
            let out = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
            let p = out.price().per_kw_hour_value();
            assert!(p <= last_price + 1e-9, "price rose with more capacity");
            last_price = p;
        }
    }

    #[test]
    fn allocation_always_feasible() {
        for spot in [10.0, 35.0, 80.0, 200.0] {
            let cs = constraints(spot);
            let bids = vec![
                linear(0, 55.0, 0.02, 5.0, 0.35),
                linear(1, 70.0, 0.05, 15.0, 0.45), // d_max above 60 W headroom
            ];
            for algo in [ClearingAlgorithm::GridScan, ClearingAlgorithm::KinkSearch] {
                let out = clear_with(algo, &bids, &cs);
                assert!(
                    cs.is_feasible(out.allocation().grants()),
                    "{algo:?} produced infeasible allocation at spot {spot}"
                );
            }
        }
    }

    #[test]
    fn kink_search_at_least_matches_grid_scan() {
        let cases: Vec<Vec<RackBid>> = vec![
            vec![linear(0, 60.0, 0.0, 0.0, 0.3)],
            vec![
                linear(0, 45.0, 0.1, 20.0, 0.2),
                linear(1, 30.0, 0.15, 10.0, 0.5),
            ],
            vec![
                RackBid::new(
                    RackId::new(0),
                    FullBid::new(vec![
                        (Price::ZERO, Watts::new(55.0)),
                        (Price::per_kw_hour(0.2), Watts::new(25.0)),
                        (Price::per_kw_hour(0.6), Watts::ZERO),
                    ])
                    .unwrap()
                    .into(),
                ),
                linear(1, 50.0, 0.05, 0.0, 0.4),
            ],
        ];
        for bids in cases {
            for spot in [20.0, 45.0, 100.0] {
                let cs = constraints(spot);
                let grid = clear_with(ClearingAlgorithm::GridScan, &bids, &cs);
                let kink = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
                assert!(
                    kink.revenue_rate() >= grid.revenue_rate() - 1e-9,
                    "kink search lost: {} < {}",
                    kink.revenue_rate(),
                    grid.revenue_rate()
                );
            }
        }
    }

    #[test]
    fn kink_search_evaluates_far_fewer_candidates() {
        let cs = constraints(100.0);
        let bids = vec![
            linear(0, 50.0, 0.1, 10.0, 0.4),
            linear(1, 40.0, 0.2, 5.0, 0.6),
        ];
        let grid = clear_with(ClearingAlgorithm::GridScan, &bids, &cs);
        let kink = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
        assert!(kink.candidates_evaluated() < grid.candidates_evaluated() / 10);
    }

    #[test]
    fn null_bids_are_ignored() {
        let cs = constraints(100.0);
        let bids = vec![RackBid::new(
            RackId::new(0),
            StepBid::new(Watts::ZERO, Price::per_kw_hour(0.2))
                .unwrap()
                .into(),
        )];
        let out = MarketClearing::default().clear(Slot::ZERO, &bids, &cs);
        assert!(out.allocation().is_empty());
        assert_eq!(out.candidates_evaluated(), 0);
    }

    #[test]
    fn zero_spot_capacity_sells_nothing() {
        let cs = constraints(0.0);
        let bids = vec![linear(0, 50.0, 0.1, 10.0, 0.4)];
        for algo in [ClearingAlgorithm::GridScan, ClearingAlgorithm::KinkSearch] {
            let out = clear_with(algo, &bids, &cs);
            assert!(out.allocation().is_empty(), "{algo:?}");
        }
    }

    #[test]
    fn per_pdu_pricing_localizes_prices() {
        // PDU#0 scarce and contested; a second PDU plentiful and cheap.
        let topo = TopologyBuilder::new(Watts::new(1000.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(60.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(60.0))
            .build()
            .unwrap();
        let cs = ConstraintSet::new(
            &topo,
            vec![Watts::new(20.0), Watts::new(200.0)],
            Watts::new(220.0),
        );
        let bids = vec![
            linear(0, 60.0, 0.10, 10.0, 0.50), // hungry on the scarce PDU
            linear(1, 60.0, 0.02, 10.0, 0.20), // cheap on the plentiful PDU
        ];
        let engine = MarketClearing::new(ClearingConfig::kink_search());
        let per_pdu = engine.clear_per_pdu(Slot::ZERO, &bids, &cs);
        assert_eq!(per_pdu.len(), 2);
        // The scarce PDU clears higher than the plentiful one.
        assert!(per_pdu[0].price() > per_pdu[1].price());
        // Each sub-market stays feasible.
        for out in &per_pdu {
            assert!(cs.is_feasible(out.allocation().grants()));
        }
        // Localized pricing extracts at least the uniform revenue here.
        let uniform = engine.clear(Slot::ZERO, &bids, &cs);
        let local_rev: f64 = per_pdu.iter().map(MarketOutcome::revenue_rate).sum();
        assert!(local_rev >= uniform.revenue_rate() - 1e-9);
    }

    #[test]
    fn per_pdu_outcomes_respect_ups_apportionment() {
        // UPS tighter than the PDU sum: shares must cap the sub-markets.
        let topo = TopologyBuilder::new(Watts::new(1000.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(60.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(60.0))
            .build()
            .unwrap();
        let cs = ConstraintSet::new(
            &topo,
            vec![Watts::new(60.0), Watts::new(60.0)],
            Watts::new(50.0),
        );
        let bids = vec![
            linear(0, 60.0, 0.0, 0.0, 0.4),
            linear(1, 60.0, 0.0, 0.0, 0.4),
        ];
        let engine = MarketClearing::default();
        let per_pdu = engine.clear_per_pdu(Slot::ZERO, &bids, &cs);
        let total: f64 = per_pdu.iter().map(|o| o.sold().value()).sum();
        assert!(total <= 50.0 + 1e-6, "UPS share exceeded: {total}");
    }

    #[test]
    fn clearing_respects_heat_zones() {
        // Two racks share a 30 W hot-aisle budget despite 100 W of PDU
        // spot; the market must keep their joint grant under it.
        let cs = constraints(100.0).with_zone(
            "aisle",
            vec![RackId::new(0), RackId::new(1)],
            Watts::new(30.0),
        );
        let bids = vec![
            linear(0, 50.0, 0.0, 0.0, 0.4),
            linear(1, 50.0, 0.0, 0.0, 0.4),
        ];
        for algo in [ClearingAlgorithm::GridScan, ClearingAlgorithm::KinkSearch] {
            let out = clear_with(algo, &bids, &cs);
            assert!(cs.is_feasible(out.allocation().grants()), "{algo:?}");
            assert!(
                out.sold() <= Watts::new(30.0 + 1e-6),
                "{algo:?}: {}",
                out.sold()
            );
        }
    }

    #[test]
    fn clearing_respects_phase_balance() {
        // Both racks on phase 0 of PDU#0: any joint grant beyond the
        // 25 W imbalance bound (vs the empty phases) is infeasible.
        let cs = constraints(100.0).with_phases(vec![0, 0], Watts::new(25.0));
        let bids = vec![
            linear(0, 50.0, 0.0, 0.0, 0.4),
            linear(1, 50.0, 0.0, 0.0, 0.4),
        ];
        let out = clear_with(ClearingAlgorithm::GridScan, &bids, &cs);
        assert!(cs.is_feasible(out.allocation().grants()));
        assert!(out.sold() <= Watts::new(25.0 + 1e-6), "sold {}", out.sold());
    }

    #[test]
    fn scratch_reuse_never_changes_outcomes() {
        // A reused engine (warm candidate buffer) must clear exactly
        // like a fresh engine for every subsequent market, including a
        // smaller one that leaves stale capacity behind.
        let markets: Vec<(Vec<RackBid>, ConstraintSet)> = vec![
            (
                vec![
                    linear(0, 55.0, 0.02, 5.0, 0.35),
                    linear(1, 70.0, 0.05, 15.0, 0.45),
                ],
                constraints(80.0),
            ),
            (vec![linear(0, 40.0, 0.05, 10.0, 0.4)], constraints(30.0)),
            (vec![], constraints(100.0)),
            (vec![linear(1, 30.0, 0.15, 10.0, 0.5)], constraints(200.0)),
        ];
        for config in [
            ClearingConfig::grid(Price::cents_per_kw_hour(0.1)),
            ClearingConfig::kink_search(),
        ] {
            let reused = MarketClearing::new(config);
            let cloned = reused.clone();
            for (slot, (bids, cs)) in markets.iter().enumerate() {
                let warm = reused.clear(Slot::new(slot as u64), bids, cs);
                let fresh = MarketClearing::new(config).clear(Slot::new(slot as u64), bids, cs);
                let from_clone = cloned.clear(Slot::new(slot as u64), bids, cs);
                assert_eq!(warm, fresh, "{config:?} slot {slot}");
                assert_eq!(from_clone, fresh, "{config:?} slot {slot} (clone)");
            }
        }
    }

    #[test]
    fn headroom_clipping_respected_in_grants() {
        // Bid asks for 100 W max but headroom is 60 W.
        let cs = constraints(500.0);
        let bids = vec![linear(0, 100.0, 0.0, 0.0, 0.4)];
        let out = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
        assert!(out.allocation().grant(RackId::new(0)) <= Watts::new(60.0));
    }

    /// A handful of distinct markets for the scratch-pool tests.
    fn distinct_markets() -> Vec<(Vec<RackBid>, ConstraintSet)> {
        vec![
            (
                vec![
                    linear(0, 55.0, 0.02, 5.0, 0.35),
                    linear(1, 70.0, 0.05, 15.0, 0.45),
                ],
                constraints(80.0),
            ),
            (vec![linear(0, 40.0, 0.05, 10.0, 0.4)], constraints(30.0)),
            (vec![linear(1, 30.0, 0.15, 10.0, 0.5)], constraints(200.0)),
            (
                vec![
                    linear(0, 20.0, 0.0, 0.0, 0.25),
                    linear(1, 45.0, 0.1, 5.0, 0.3),
                ],
                constraints(55.0),
            ),
        ]
    }

    #[test]
    fn concurrent_clears_on_one_engine_match_serial() {
        // Many threads hammering one shared engine must produce the
        // same outcomes as clearing the same markets one at a time.
        let markets = distinct_markets();
        for config in [
            ClearingConfig::grid(Price::cents_per_kw_hour(0.1)),
            ClearingConfig::kink_search(),
        ] {
            let engine = MarketClearing::new(config);
            let serial: Vec<MarketOutcome> = markets
                .iter()
                .map(|(bids, cs)| MarketClearing::new(config).clear(Slot::ZERO, bids, cs))
                .collect();
            for round in 0..4 {
                let parallel = spotdc_par::ThreadPool::new(4)
                    .par_map(&markets, |(bids, cs)| engine.clear(Slot::ZERO, bids, cs));
                assert_eq!(parallel, serial, "{config:?} round {round}");
            }
        }
    }

    #[test]
    fn poisoned_scratch_slots_are_skipped() {
        // Poison one pool slot; clearing must route around it and stay
        // correct (the old code silently reused poisoned state).
        let engine = MarketClearing::default();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.scratch[0].lock().unwrap();
            panic!("poison the slot");
        }));
        assert!(engine.scratch[0].is_poisoned());
        let cs = constraints(100.0);
        let bids = vec![linear(0, 40.0, 0.05, 10.0, 0.4)];
        let warm = engine.clear(Slot::ZERO, &bids, &cs);
        let fresh = MarketClearing::default().clear(Slot::ZERO, &bids, &cs);
        assert_eq!(warm, fresh);
    }

    #[test]
    fn clear_falls_back_when_all_scratch_slots_are_busy() {
        // Hold every pool slot (try_lock is non-reentrant, so the
        // clearing below cannot acquire any of them) and verify the
        // stack-local fallback produces the same outcome.
        let engine = MarketClearing::default();
        let cs = constraints(100.0);
        let bids = vec![linear(0, 40.0, 0.05, 10.0, 0.4)];
        let guards: Vec<_> = engine.scratch.iter().map(|m| m.lock().unwrap()).collect();
        let busy = engine.clear(Slot::ZERO, &bids, &cs);
        drop(guards);
        let free = engine.clear(Slot::ZERO, &bids, &cs);
        assert_eq!(busy, free);
    }

    #[test]
    fn submarkets_compose_to_clear_per_pdu() {
        let topo = TopologyBuilder::new(Watts::new(1000.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(60.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(60.0))
            .build()
            .unwrap();
        let cs = ConstraintSet::new(
            &topo,
            vec![Watts::new(40.0), Watts::new(90.0)],
            Watts::new(100.0),
        );
        let bids = vec![
            linear(0, 60.0, 0.10, 10.0, 0.50),
            linear(1, 60.0, 0.02, 10.0, 0.20),
        ];
        let engine = MarketClearing::new(ClearingConfig::kink_search());
        let direct = engine.clear_per_pdu(Slot::ZERO, &bids, &cs);
        let subs = engine.per_pdu_submarkets(&bids, &cs);
        assert_eq!(subs.len(), direct.len());
        let composed: Vec<MarketOutcome> = subs
            .iter()
            .map(|(group, local)| engine.clear(Slot::ZERO, group, local))
            .collect();
        assert_eq!(composed, direct);
        // And a parallel merge in sub-market order is identical too.
        let merged = spotdc_par::ThreadPool::new(4).par_map(&subs, |(group, local)| {
            engine.clear(Slot::ZERO, group, local)
        });
        assert_eq!(merged, direct);
    }
}
