//! Market power (Section III-C): can a dominant tenant move the price?
//!
//! The paper argues strategic price manipulation is unlikely in
//! practice because tenants cannot see each other. This experiment
//! quantifies the *upper bound* of what shading could achieve: the
//! largest opportunistic tenants understate their willingness to pay
//! (lower `q_max`), and we measure what happens to the clearing price,
//! their own bills and performance, and the operator's profit.

use spotdc_tenants::Strategy;

use crate::accounting::Billing;
use crate::baselines::Mode;
use crate::experiments::common::{fan_out, run_mode, ExpConfig, ExpOutput};
use crate::report::TextTable;
use crate::scenario::Scenario;

/// One shading level's outcome.
#[derive(Debug, Clone, Copy)]
pub struct ShadingPoint {
    /// Multiplier applied to the shading tenants' `q_max`.
    pub shading: f64,
    /// Mean market price, $/kW/h.
    pub mean_price: f64,
    /// Operator extra profit, %.
    pub operator_extra_percent: f64,
    /// The shading tenants' combined spot payments, $.
    pub shader_payments: f64,
    /// The shading tenants' average performance index (wanting slots).
    pub shader_perf: f64,
}

/// Runs the shading sweep: all opportunistic tenants shade together
/// (the strongest collusion the paper contemplates).
#[must_use]
pub fn compute(cfg: &ExpConfig) -> Vec<ShadingPoint> {
    let billing = Billing::paper_defaults();
    let levels: &[f64] = if cfg.quick {
        &[1.0, 0.6]
    } else {
        &[1.0, 0.8, 0.6, 0.4]
    };
    let base = Scenario::testbed(cfg.seed);
    let shader_idx: Vec<usize> = base
        .specs
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.kind.is_sprinting())
        .map(|(i, _)| i)
        .collect();
    // Shading only rewrites bid strategies — the load traces are
    // untouched, so every level's clone shares the base trace cache.
    fan_out(levels, |&shading| {
        let mut scenario = base.clone();
        for &i in &shader_idx {
            if let Strategy::Elastic { q_min, q_max } = scenario.agents[i].strategy().clone() {
                scenario.agents[i]
                    .set_strategy(Strategy::elastic(q_min * shading, q_max * shading));
            }
        }
        let report = run_mode(cfg, scenario, Mode::SpotDc);
        let mut payments = 0.0;
        for rec in &report.records {
            for &i in &shader_idx {
                payments += rec.tenants[i].payment;
            }
        }
        let perf = shader_idx
            .iter()
            .map(|&i| report.tenant_avg_perf(i, true))
            .sum::<f64>()
            / shader_idx.len() as f64;
        ShadingPoint {
            shading,
            mean_price: report.price_cdf().mean(),
            operator_extra_percent: report.profit(&billing).extra_percent(),
            shader_payments: payments,
            shader_perf: perf,
        }
    })
}

/// Renders the market-power study.
#[must_use]
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let points = compute(cfg);
    let mut table = TextTable::new(vec![
        "q_max shading",
        "mean price",
        "operator extra",
        "shaders' payments ($)",
        "shaders' perf",
    ]);
    for p in &points {
        table.row(vec![
            format!("×{:.1}", p.shading),
            format!("{:.3}", p.mean_price),
            format!("{:+.2}%", p.operator_extra_percent),
            format!("{:.2}", p.shader_payments),
            format!("{:.2}", p.shader_perf),
        ]);
    }
    let mut body = table.render();
    body.push_str(
        "\ncoordinated shading cuts the shaders' bills at essentially no\n\
         performance cost — buyer-side collusion WOULD pay. This is exactly\n\
         why the paper leans on tenants' mutual invisibility (no tenant\n\
         knows who shares its PDU, let alone when they bid) rather than\n\
         incentives to rule it out; the operator's residual profit comes\n\
         from the sprinting demand the shaders cannot influence.\n",
    );
    ExpOutput {
        id: "market_power".into(),
        title: "Market power: collusive bid shading (Section III-C)".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<ShadingPoint> {
        // Six days, not fewer: payment totals at shorter horizons swing a
        // few percent either way on the seeded arrival noise, which is
        // larger than the shading effect being asserted below.
        compute(&ExpConfig {
            days: 6.0,
            ..ExpConfig::quick()
        })
    }

    #[test]
    fn shading_lowers_prices_and_payments() {
        let p = points();
        let honest = &p[0];
        let shaded = p.last().unwrap();
        assert!(shaded.mean_price <= honest.mean_price + 1e-9);
        assert!(shaded.shader_payments <= honest.shader_payments + 1e-9);
    }

    #[test]
    fn shading_barely_moves_the_shaders_performance() {
        // The striking (and honest) result: coordinated shading keeps
        // performance within a few percent while cutting payments —
        // collusion would pay, which is why the paper's defence is
        // tenants' mutual invisibility rather than incentives.
        let p = points();
        let honest = &p[0];
        let shaded = p.last().unwrap();
        let ratio = shaded.shader_perf / honest.shader_perf.max(1e-12);
        assert!(
            (0.9..=1.1).contains(&ratio),
            "performance moved too much: {ratio}"
        );
    }

    #[test]
    fn operator_profit_degrades_gracefully() {
        let p = points();
        let honest = p[0].operator_extra_percent;
        for point in &p {
            assert!(
                point.operator_extra_percent > 0.2 * honest,
                "profit collapsed at shading {}: {}",
                point.shading,
                point.operator_extra_percent
            );
        }
    }
}
