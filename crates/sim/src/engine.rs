//! The time-slotted simulation driver.
//!
//! [`Simulation::run`] owns the clock: each slot it steps the staged
//! pipeline its mode composed (see [`crate::pipeline`]), mirroring
//! Algorithm 1 and Fig. 6 of the paper:
//!
//! 1. **Sense** — tenants observe their load traces, rack PDUs reset;
//! 2. **CollectBids** (SpotDC) / **CollectGains** (MaxPerf) — bids
//!    travel a lossy channel with late-bid rollover, or gain envelopes
//!    are gathered;
//! 3. **Predict** — spot capacity is forecast from *last* slot's meter
//!    readings (Eqns. 1–4), under the staleness policy if armed;
//! 4. **Clear** — uniform-price clearing, the per-PDU localized
//!    ablation, or MaxPerf's omniscient water-filling; lost broadcasts
//!    revoke the affected grants;
//! 5. **Enforce** — the cap controller sheds spot before guaranteed
//!    capacity when overloads were observed;
//! 6. **Settle** — tenants run under their budgets, the meter records
//!    every rack's draw, emergencies and accounting settle, the slot
//!    record is emitted.
//!
//! The pipeline distinguishes **physical** power (what racks actually
//! draw, which feeds the emergency log and the per-slot records) from
//! **observed** power (what the meter reports, which feeds prediction
//! and clearing). With fault injection off the two are identical, down
//! to the float-accumulation order; a [`FaultConfig`] lets them
//! diverge — dropped, frozen or noisy meter samples, lost or late
//! bids, delayed prediction inputs — so the degradation paths
//! ([`StalenessPolicy`] margins, [`CapController`] shedding, the
//! post-clearing invariant checker) can be exercised deterministically.
//!
//! [`StalenessPolicy`]: spotdc_core::StalenessPolicy
//! [`CapController`]: spotdc_power::CapController

use spotdc_faults::FaultConfig;
use spotdc_obs::{BlackBoxConfig, FlightRecorder};
use spotdc_power::CapConfig;
use spotdc_units::{MonotonicNanos, Slot};

use crate::baselines::Mode;
use crate::metrics::SimReport;
use crate::pipeline::{self, SimState, SlotContext};
use crate::scenario::Scenario;
use spotdc_core::OperatorConfig;

/// Configuration for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Operating mode (PowerCapped / SpotDC / MaxPerf).
    pub mode: Mode,
    /// Operator-side market configuration.
    pub operator: OperatorConfig,
    /// Probability a bid submission is lost.
    pub bid_loss: f64,
    /// Probability a price broadcast is lost.
    pub broadcast_loss: f64,
    /// Fig. 16: run a pre-clearing pass and feed the resulting price to
    /// price-predicting strategies ("perfect knowledge of market
    /// price").
    pub price_oracle: bool,
    /// Ablation: clear each PDU independently at its own localized
    /// price instead of the paper's single uniform price.
    pub per_pdu_pricing: bool,
    /// Telemetry settings. Installed process-wide at the start of
    /// [`Simulation::run`] when `telemetry.enabled` is set *and* no
    /// earlier install happened, so the disabled default never clobbers
    /// a sink installed elsewhere (e.g. by a test or the repro binary)
    /// and concurrent simulations never race on the global sink.
    pub telemetry: spotdc_telemetry::TelemetryConfig,
    /// Fault-injection schedule. Disabled by default; when disabled the
    /// engine takes the exact pre-fault code path, so outputs stay
    /// byte-identical to a build without the fault layer.
    pub faults: FaultConfig,
    /// Graceful-degradation cap controller (spot-before-guaranteed
    /// shedding with hysteresis). Disabled by default.
    pub cap: CapConfig,
    /// Run the post-clearing invariant checker (Eqns. 1–4) every slot.
    /// Defaults to on in debug builds; in release it can be forced at
    /// runtime via [`crate::validate::set_forced`] (the repro binary's
    /// `--validate` flag).
    pub validate: bool,
    /// Flight-recorder settings. When enabled, [`Simulation::run`] arms
    /// a [`FlightRecorder`] (unless a binary armed one already, with
    /// its own dump directory) so capacity emergencies leave black-box
    /// JSONL dumps behind. Events only flow while telemetry is
    /// enabled.
    pub blackbox: BlackBoxConfig,
    /// Worker threads for the *within-slot* data-parallel sections
    /// (bid/gain collection, per-PDU sub-market clearing, tenant
    /// settlement). `1` (the default) keeps every stage on the single
    /// historical serial path; higher values fan those sections out on
    /// a [`spotdc_par::ThreadPool`] with order-preserving merges, so
    /// reports stay byte-identical at any width. Orthogonal to the
    /// *across-run* `--jobs` fan-out in the experiment layer.
    pub inner_jobs: usize,
}

/// Why an [`EngineConfig`] (or a run request) was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A probability field is NaN, negative, or above one.
    InvalidRate {
        /// Which field was out of range.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A magnitude field is NaN, infinite, or negative.
    InvalidMagnitude {
        /// Which field was out of range.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A market-only setting was enabled in a mode with no market.
    MarketOnlySetting {
        /// Which setting requires a market.
        setting: &'static str,
        /// The marketless mode it was combined with.
        mode: Mode,
    },
    /// A simulation was asked to run for zero slots.
    ZeroHorizon,
    /// `inner_jobs` was zero: the within-slot parallel width must be at
    /// least one (one means the serial path).
    ZeroInnerJobs,
    /// The flight recorder was enabled with a zero-event ring: a black
    /// box with no context is a misconfiguration, not a request.
    ZeroBlackBoxCapacity,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidRate { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            ConfigError::InvalidMagnitude { field, value } => {
                write!(f, "{field} must be finite and non-negative, got {value}")
            }
            ConfigError::MarketOnlySetting { setting, mode } => {
                write!(f, "{setting} requires a market mode, but mode is {mode}")
            }
            ConfigError::ZeroHorizon => write!(f, "simulation horizon must be at least one slot"),
            ConfigError::ZeroInnerJobs => {
                write!(f, "inner_jobs must be at least one (1 = serial)")
            }
            ConfigError::ZeroBlackBoxCapacity => {
                write!(
                    f,
                    "blackbox.capacity must be at least one event when enabled"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl EngineConfig {
    /// Default configuration for the given mode: paper-default market
    /// settings, lossless communications, no price oracle.
    #[must_use]
    pub fn new(mode: Mode) -> Self {
        EngineConfig {
            mode,
            operator: OperatorConfig::default(),
            bid_loss: 0.0,
            broadcast_loss: 0.0,
            price_oracle: false,
            per_pdu_pricing: false,
            telemetry: spotdc_telemetry::TelemetryConfig::default(),
            faults: FaultConfig::disabled(),
            cap: CapConfig::disabled(),
            validate: cfg!(debug_assertions),
            blackbox: BlackBoxConfig::default(),
            inner_jobs: 1,
        }
    }

    /// Checks the configuration for values that would silently corrupt
    /// a run: NaN/out-of-range probabilities, negative magnitudes, and
    /// market-only settings combined with a marketless mode.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.inner_jobs == 0 {
            return Err(ConfigError::ZeroInnerJobs);
        }
        if self.blackbox.enabled && self.blackbox.capacity == 0 {
            return Err(ConfigError::ZeroBlackBoxCapacity);
        }
        let rates = [
            ("bid_loss", self.bid_loss),
            ("broadcast_loss", self.broadcast_loss),
            ("faults.meter_dropout", self.faults.meter_dropout),
            ("faults.meter_freeze", self.faults.meter_freeze),
            ("faults.meter_noise", self.faults.meter_noise),
            ("faults.bid_loss", self.faults.bid_loss),
            ("faults.bid_delay", self.faults.bid_delay),
            ("faults.prediction_delay", self.faults.prediction_delay),
        ];
        for (field, value) in rates {
            // NaN fails the range check too: all comparisons are false.
            if !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::InvalidRate { field, value });
            }
        }
        let magnitude = self.faults.noise_magnitude;
        if !magnitude.is_finite() || magnitude < 0.0 {
            return Err(ConfigError::InvalidMagnitude {
                field: "faults.noise_magnitude",
                value: magnitude,
            });
        }
        if self.cap.enabled {
            for (field, value) in [
                ("cap.margin", self.cap.margin),
                ("cap.release", self.cap.release),
            ] {
                if !(0.0..1.0).contains(&value) {
                    return Err(ConfigError::InvalidRate { field, value });
                }
            }
        }
        if !self.mode.has_market() {
            let market_only = [
                ("price_oracle", self.price_oracle),
                ("per_pdu_pricing", self.per_pdu_pricing),
                ("bid_loss", self.bid_loss > 0.0),
                ("broadcast_loss", self.broadcast_loss > 0.0),
            ];
            for (setting, set) in market_only {
                if set {
                    return Err(ConfigError::MarketOnlySetting {
                        setting,
                        mode: self.mode,
                    });
                }
            }
        }
        Ok(())
    }
}

/// A runnable simulation: a scenario plus an engine configuration.
#[derive(Debug, Clone)]
pub struct Simulation {
    scenario: Scenario,
    config: EngineConfig,
}

impl Simulation {
    /// Creates a simulation.
    #[must_use]
    pub fn new(scenario: Scenario, config: EngineConfig) -> Self {
        Simulation { scenario, config }
    }

    /// Creates a simulation, rejecting invalid configurations.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] in `config`.
    pub fn try_new(scenario: Scenario, config: EngineConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Simulation { scenario, config })
    }

    /// Runs `slots` slots after validating the configuration and the
    /// horizon.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for an invalid configuration or a
    /// zero-length horizon.
    pub fn try_run(self, slots: u64) -> Result<SimReport, ConfigError> {
        self.config.validate()?;
        if slots == 0 {
            return Err(ConfigError::ZeroHorizon);
        }
        Ok(self.run(slots))
    }

    /// Runs `slots` slots and returns the full report.
    ///
    /// The driver owns the clock and nothing else: it builds the
    /// cross-slot [`SimState`] (including the slot-0 meter warm-up),
    /// asks the mode for its stage composition, and steps the stages
    /// once per slot. All market behaviour lives in the stages.
    #[must_use]
    pub fn run(self, slots: u64) -> SimReport {
        let Simulation { scenario, config } = self;
        if config.telemetry.enabled {
            spotdc_telemetry::install_if_uninstalled(config.telemetry);
        }
        // Arm the flight recorder unless a binary armed one already
        // (with its own dump directory); either way the recorder stays
        // installed after the run so sweeps share one ring.
        let recorder = if config.blackbox.enabled {
            FlightRecorder::arm_if_unarmed(config.blackbox)
        } else {
            None
        };
        let n = slots as usize;
        let mut state = SimState::new(&scenario, &config, n);
        let mut ctx = SlotContext::new(state.topology.rack_count(), state.agents.len());
        let mut stages = pipeline::build(&config);

        for t in 0..n {
            let slot = Slot::new(t as u64);
            let _slot_span = spotdc_telemetry::span!("engine.slot", slot = slot);
            ctx.begin(slot, t);
            for stage in stages.iter_mut() {
                let _stage_span = spotdc_telemetry::span!(stage.name());
                // Time the stage for the event log too: spans feed the
                // in-process registry only, while a `SpanClosed` event
                // per stage lets `spotdc-trace` rebuild the latency
                // distributions from the JSONL artifact alone.
                let started = spotdc_telemetry::is_enabled().then(std::time::Instant::now);
                stage.run(&mut state, &mut ctx);
                if let Some(started) = started {
                    spotdc_telemetry::emit(spotdc_telemetry::Event::SpanClosed {
                        slot,
                        at: MonotonicNanos::now(),
                        span: stage.name().to_owned(),
                        nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    });
                }
            }
        }

        if recorder.is_some() {
            // Dump any emergency window still collecting its tail.
            spotdc_telemetry::flush();
        }
        state.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::Billing;

    fn run(mode: Mode, slots: u64) -> SimReport {
        Simulation::new(Scenario::testbed(11), EngineConfig::new(mode)).run(slots)
    }

    #[test]
    fn powercapped_never_sells_spot() {
        let r = run(Mode::PowerCapped, 200);
        assert!(r.records.iter().all(|rec| rec.spot_sold == 0.0));
        assert_eq!(r.spot_revenue_rate(), 0.0);
    }

    #[test]
    fn spotdc_sells_spot_and_earns_revenue() {
        let r = run(Mode::SpotDc, 400);
        assert!(r.avg_spot_sold() > 0.0, "no spot sold in 400 slots");
        assert!(r.spot_revenue_rate() > 0.0);
        let profit = r.profit(&Billing::paper_defaults());
        assert!(profit.extra_percent() > 0.0);
    }

    #[test]
    fn maxperf_allocates_without_revenue() {
        let r = run(Mode::MaxPerf, 400);
        assert!(r.avg_spot_sold() > 0.0);
        assert_eq!(r.spot_revenue_rate(), 0.0);
        assert!(r.records.iter().all(|rec| rec.price.is_none()));
    }

    #[test]
    fn spot_improves_wanting_tenants_performance() {
        let pc = run(Mode::PowerCapped, 400);
        let dc = run(Mode::SpotDc, 400);
        // Average over wanting slots, across all tenants that ever want.
        let mut improved = 0;
        let mut total = 0;
        for i in 0..pc.tenant_count() {
            let base = pc.tenant_avg_perf(i, true);
            let spot = dc.tenant_avg_perf(i, true);
            if base > 0.0 {
                total += 1;
                if spot > base * 1.01 {
                    improved += 1;
                }
            }
        }
        assert!(
            total >= 6,
            "expected most tenants to want spot at least once"
        );
        assert!(
            improved * 2 > total,
            "only {improved}/{total} tenants improved"
        );
    }

    #[test]
    fn maxperf_performance_at_least_spotdc() {
        let dc = run(Mode::SpotDc, 300);
        let mp = run(Mode::MaxPerf, 300);
        let perf = |r: &SimReport| -> f64 {
            (0..r.tenant_count())
                .map(|i| r.tenant_avg_perf(i, true))
                .sum::<f64>()
        };
        // MaxPerf ignores prices and should allocate at least as much.
        assert!(mp.avg_spot_sold() >= dc.avg_spot_sold() * 0.9);
        assert!(perf(&mp) >= perf(&dc) * 0.95);
    }

    #[test]
    fn grants_respect_headroom_always() {
        let r = run(Mode::SpotDc, 300);
        for rec in &r.records {
            for (i, t) in rec.tenants.iter().enumerate() {
                assert!(
                    t.grant <= r.headrooms[i].value() + 1e-6,
                    "grant {} exceeds headroom at slot {}",
                    t.grant,
                    rec.slot
                );
            }
        }
    }

    #[test]
    fn spot_never_adds_emergencies() {
        let pc = run(Mode::PowerCapped, 500);
        let dc = run(Mode::SpotDc, 500);
        assert!(
            dc.emergencies <= pc.emergencies + 1,
            "SpotDC {} vs PowerCapped {}",
            dc.emergencies,
            pc.emergencies
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(Mode::SpotDc, 100);
        let b = run(Mode::SpotDc, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn comms_losses_reduce_sales() {
        let clean = run(Mode::SpotDc, 300);
        let lossy = Simulation::new(
            Scenario::testbed(11),
            EngineConfig {
                bid_loss: 0.5,
                ..EngineConfig::new(Mode::SpotDc)
            },
        )
        .run(300);
        assert!(lossy.avg_spot_sold() < clean.avg_spot_sold());
    }

    #[test]
    fn default_configs_validate_in_every_mode() {
        for mode in [Mode::PowerCapped, Mode::SpotDc, Mode::MaxPerf] {
            EngineConfig::new(mode).validate().unwrap();
        }
        EngineConfig {
            faults: FaultConfig::uniform(0.1, 7),
            cap: CapConfig::paper_default(),
            ..EngineConfig::new(Mode::SpotDc)
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn nan_and_out_of_range_rates_are_rejected() {
        let nan = EngineConfig {
            faults: FaultConfig {
                meter_noise: f64::NAN,
                ..FaultConfig::disabled()
            },
            ..EngineConfig::new(Mode::SpotDc)
        };
        assert!(matches!(
            nan.validate(),
            Err(ConfigError::InvalidRate {
                field: "faults.meter_noise",
                ..
            })
        ));

        let negative = EngineConfig {
            bid_loss: -0.25,
            ..EngineConfig::new(Mode::SpotDc)
        };
        assert!(matches!(
            negative.validate(),
            Err(ConfigError::InvalidRate {
                field: "bid_loss",
                value,
            }) if value == -0.25
        ));

        let above_one = EngineConfig {
            faults: FaultConfig {
                prediction_delay: 1.5,
                ..FaultConfig::disabled()
            },
            ..EngineConfig::new(Mode::SpotDc)
        };
        assert!(above_one.validate().is_err());

        let bad_noise = EngineConfig {
            faults: FaultConfig {
                noise_magnitude: -1.0,
                ..FaultConfig::disabled()
            },
            ..EngineConfig::new(Mode::SpotDc)
        };
        assert!(matches!(
            bad_noise.validate(),
            Err(ConfigError::InvalidMagnitude { .. })
        ));
    }

    #[test]
    fn market_settings_require_market_mode() {
        let oracle = EngineConfig {
            price_oracle: true,
            ..EngineConfig::new(Mode::PowerCapped)
        };
        assert!(matches!(
            oracle.validate(),
            Err(ConfigError::MarketOnlySetting {
                setting: "price_oracle",
                mode: Mode::PowerCapped,
            })
        ));

        let lossy_maxperf = EngineConfig {
            broadcast_loss: 0.2,
            ..EngineConfig::new(Mode::MaxPerf)
        };
        assert!(lossy_maxperf.validate().is_err());

        // The same settings are fine with a market.
        EngineConfig {
            price_oracle: true,
            broadcast_loss: 0.2,
            ..EngineConfig::new(Mode::SpotDc)
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn try_new_and_try_run_reject_bad_inputs() {
        let bad = EngineConfig {
            bid_loss: f64::NAN,
            ..EngineConfig::new(Mode::SpotDc)
        };
        assert!(Simulation::try_new(Scenario::testbed(11), bad).is_err());

        let sim = Simulation::try_new(Scenario::testbed(11), EngineConfig::new(Mode::SpotDc))
            .expect("default config is valid");
        assert_eq!(
            sim.clone().try_run(0).unwrap_err(),
            ConfigError::ZeroHorizon
        );
        let report = sim.try_run(50).expect("valid run succeeds");
        assert_eq!(report.records.len(), 50);
    }

    #[test]
    fn zero_capacity_blackbox_is_rejected() {
        let zero = EngineConfig {
            blackbox: BlackBoxConfig {
                enabled: true,
                capacity: 0,
                ..BlackBoxConfig::default()
            },
            ..EngineConfig::new(Mode::SpotDc)
        };
        assert_eq!(zero.validate(), Err(ConfigError::ZeroBlackBoxCapacity));
        // A disabled recorder never trips the check; an enabled one
        // with the defaults is fine.
        EngineConfig {
            blackbox: BlackBoxConfig {
                enabled: false,
                capacity: 0,
                ..BlackBoxConfig::default()
            },
            ..EngineConfig::new(Mode::SpotDc)
        }
        .validate()
        .unwrap();
        EngineConfig {
            blackbox: BlackBoxConfig::enabled(),
            ..EngineConfig::new(Mode::SpotDc)
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn zero_inner_jobs_is_rejected() {
        let zero = EngineConfig {
            inner_jobs: 0,
            ..EngineConfig::new(Mode::SpotDc)
        };
        assert_eq!(zero.validate(), Err(ConfigError::ZeroInnerJobs));
        for inner_jobs in [1, 2, 4] {
            EngineConfig {
                inner_jobs,
                ..EngineConfig::new(Mode::SpotDc)
            }
            .validate()
            .unwrap();
        }
    }

    #[test]
    fn inner_jobs_width_never_changes_the_report() {
        let serial = run(Mode::SpotDc, 150);
        for inner_jobs in [2, 4] {
            let wide = Simulation::new(
                Scenario::testbed(11),
                EngineConfig {
                    inner_jobs,
                    ..EngineConfig::new(Mode::SpotDc)
                },
            )
            .run(150);
            assert_eq!(wide, serial, "inner_jobs = {inner_jobs}");
        }
        // The per-PDU ablation exercises the parallel sub-market path.
        let per_pdu = |inner_jobs: usize| {
            Simulation::new(
                Scenario::testbed(11),
                EngineConfig {
                    per_pdu_pricing: true,
                    inner_jobs,
                    ..EngineConfig::new(Mode::SpotDc)
                },
            )
            .run(150)
        };
        assert_eq!(per_pdu(4), per_pdu(1));
    }

    #[test]
    fn config_errors_render_the_offending_field() {
        let err = ConfigError::InvalidRate {
            field: "faults.bid_delay",
            value: 2.0,
        };
        assert!(err.to_string().contains("faults.bid_delay"));
        assert!(ConfigError::ZeroHorizon.to_string().contains("one slot"));
    }
}
