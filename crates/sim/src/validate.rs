//! Process-wide opt-in for release-mode invariant validation.
//!
//! Debug builds validate every slot by default
//! ([`EngineConfig::new`](crate::engine::EngineConfig) sets `validate:
//! cfg!(debug_assertions)`). Release builds skip it unless a runtime
//! switch — the repro binary's `--validate` flag — forces it on here.
//! A relaxed atomic keeps the per-slot read free of synchronization
//! cost, mirroring the telemetry enable guard.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static FORCED: AtomicBool = AtomicBool::new(false);
static VIOLATIONS: AtomicUsize = AtomicUsize::new(0);

/// Forces (or un-forces) invariant validation for every simulation in
/// this process, regardless of each engine's `validate` flag.
pub fn set_forced(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
}

/// Whether validation is currently forced on process-wide.
#[must_use]
pub fn forced() -> bool {
    FORCED.load(Ordering::Relaxed)
}

/// Records `n` invariant violations in the process-wide tally. Called
/// by the engine so release-mode harnesses (where `debug_assert!` is
/// compiled out) can still turn violations into a nonzero exit.
pub fn record_violations(n: usize) {
    if n > 0 {
        VIOLATIONS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Total invariant violations recorded by any simulation in this
/// process since start (or the last [`reset_violations`]).
#[must_use]
pub fn violations() -> usize {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// Resets the process-wide violation tally (test isolation).
pub fn reset_violations() {
    VIOLATIONS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forcing_round_trips() {
        // Other tests rely on the default-off state; restore it.
        assert!(!forced());
        set_forced(true);
        assert!(forced());
        set_forced(false);
        assert!(!forced());
    }

    #[test]
    fn violation_tally_accumulates_and_resets() {
        reset_violations();
        record_violations(0);
        assert_eq!(violations(), 0);
        record_violations(2);
        record_violations(1);
        assert_eq!(violations(), 3);
        reset_violations();
        assert_eq!(violations(), 0);
    }
}
