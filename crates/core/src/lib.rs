//! The SpotDC spot-capacity market (the paper's core contribution).
//!
//! SpotDC lets a multi-tenant data-center operator sell its fluctuating
//! unused power capacity ("spot capacity") back to tenants, slot by
//! slot, through *demand-function bidding*:
//!
//! 1. each participating rack submits a four-parameter piece-wise linear
//!    demand function ([`LinearBid`], degenerating to [`StepBid`]; the
//!    complete-curve [`FullBid`] is the research upper bound) —
//!    [`demand`];
//! 2. the operator predicts the spot capacity available at each PDU and
//!    the UPS from live power monitoring — [`prediction`];
//! 3. a single market price is chosen to maximize revenue subject to
//!    rack/PDU/UPS capacity constraints (Eq. 1–4 of the paper) —
//!    [`clearing`] over [`constraints`];
//! 4. every rack receives its own demand function evaluated at the
//!    clearing price — [`allocation`] — and may draw that much extra
//!    power for exactly one slot.
//!
//! [`maxperf`] implements the owner-operated upper-bound allocator the
//! paper compares against, and [`protocol`] the operator↔tenant message
//! exchange with its loss semantics (lost messages ⇒ no spot capacity).
//!
//! ```
//! use spotdc_core::demand::{DemandBid, LinearBid};
//! use spotdc_units::{Price, Watts};
//!
//! let bid = LinearBid::new(
//!     Watts::new(60.0), Price::per_kw_hour(0.05),   // (D_max, q_min)
//!     Watts::new(20.0), Price::per_kw_hour(0.30),   // (D_min, q_max)
//! )?;
//! let bid = DemandBid::from(bid);
//! assert_eq!(bid.demand_at(Price::per_kw_hour(0.01)), Watts::new(60.0));
//! assert_eq!(bid.demand_at(Price::per_kw_hour(1.0)), Watts::ZERO);
//! # Ok::<(), spotdc_core::BidError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod bid;
pub mod clearing;
pub mod constraints;
pub mod demand;
pub mod invariant;
pub mod maxperf;
pub mod operator;
pub mod prediction;
pub mod protocol;
pub mod wire;

/// The shared length-prefix + CRC-32 record framing, re-exported from
/// `spotdc-durable` so the WAL, checkpoints and the distributed wire
/// protocol all use the one implementation (and its torn/corrupt-tail
/// tests) instead of growing a second codec.
pub use spotdc_durable::frame;

pub use allocation::SpotAllocation;
pub use bid::{BidError, RackBid, TenantBid};
pub use clearing::{
    ClearingAlgorithm, ClearingCacheStats, ClearingConfig, MarketClearing, MarketOutcome,
};
pub use constraints::{ConstraintSet, HeatZone, PhasePlan};
pub use demand::{DemandBid, FullBid, LinearBid, StepBid};
pub use invariant::{check_allocation, MarketInvariant};
pub use maxperf::{max_perf_allocate, ConcaveGain};
pub use operator::{DegradedInfo, Operator, OperatorConfig};
pub use prediction::{
    DegradedPrediction, MarginPolicy, PredictedSpot, PredictionScratch, SpotPredictor,
    StalenessPolicy,
};
pub use protocol::{CommsModel, ProtocolEvent};
pub use wire::{ClearResult, ClearTask, TaskShip, WireError, WireMsg};
