//! Test configuration and the deterministic RNG behind the strategies.

/// Per-`proptest!` block configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Upstream's default of 256 cases.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG used to drive strategies (SplitMix64).
///
/// Seeded from the test's fully-qualified name, so every test draws an
/// independent, reproducible stream: a failure observed once recurs on
/// every re-run until fixed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded by hashing `name` (FNV-1a).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty set");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut r = TestRng::deterministic("u");
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn index_bounds() {
        let mut r = TestRng::deterministic("i");
        for _ in 0..1000 {
            assert!(r.next_index(13) < 13);
        }
    }
}
