//! Per-slot records and the aggregations the paper's figures plot.

use serde::{Deserialize, Serialize};
use spotdc_traces::Cdf;
use spotdc_units::{SlotDuration, Watts};

use crate::accounting::{Billing, ProfitSummary, TenantBill};

/// One tenant's numbers for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantSlotMetrics {
    /// Whether the tenant wanted spot capacity this slot.
    pub wanted: bool,
    /// Spot capacity granted, W.
    pub grant: f64,
    /// Power drawn, W.
    pub draw: f64,
    /// Performance index (1/latency or throughput) — higher is better.
    pub perf_index: f64,
    /// SLO status for sprinting tenants, `None` for opportunistic.
    pub slo_met: Option<bool>,
    /// Performance cost rate, $/h.
    pub cost_rate: f64,
    /// Spot payment for this slot, $.
    pub payment: f64,
}

/// Everything recorded for one slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Slot index.
    pub slot: u64,
    /// Clearing price ($/kW/h) when any spot capacity was sold.
    pub price: Option<f64>,
    /// Predicted spot capacity available (min of PDU total and UPS), W.
    pub spot_available: f64,
    /// Spot capacity sold/allocated, W.
    pub spot_sold: f64,
    /// Aggregate UPS power, W.
    pub ups_power: f64,
    /// Per-PDU power, W.
    pub pdu_power: Vec<f64>,
    /// Per-tenant metrics, index-aligned with the scenario's agents.
    pub tenants: Vec<TenantSlotMetrics>,
}

/// The full output of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-slot records, in slot order.
    pub records: Vec<SlotRecord>,
    /// The slot length used.
    pub slot: SlotDuration,
    /// Per-tenant subscriptions (index-aligned with records' tenants).
    pub subscriptions: Vec<Watts>,
    /// Per-tenant rack spot headroom.
    pub headrooms: Vec<Watts>,
    /// Total subscribed capacity including non-participating groups.
    pub total_subscribed: Watts,
    /// The UPS capacity.
    pub ups_capacity: Watts,
    /// Number of capacity overloads beyond the ±5 % breaker-tolerance
    /// band — genuine emergencies requiring power shaving.
    pub emergencies: usize,
    /// Number of overloads *within* breaker tolerance: transient
    /// overshoots absorbed by the hardware (Section III-C's
    /// "short-term power spike … handled by circuit breaker
    /// tolerance").
    pub transient_overshoots: usize,
    /// Slots in which a degradation path fired: stale-meter prediction
    /// penalties or withholding, or cap-controller shedding.
    pub degraded_slots: usize,
    /// Post-clearing invariant violations (Eqns. 1–4) found by the
    /// validator; always zero unless validation was enabled *and*
    /// something upstream is broken.
    pub invariant_violations: usize,
    /// Faults the injection plan actually fired during the run.
    pub faults_injected: usize,
}

impl SimReport {
    /// The simulated horizon in hours.
    #[must_use]
    pub fn hours(&self) -> f64 {
        self.records.len() as f64 * self.slot.hours()
    }

    /// Average spot revenue rate over the horizon, $/h.
    #[must_use]
    pub fn spot_revenue_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let per_slot: f64 = self
            .records
            .iter()
            .map(|r| r.price.unwrap_or(0.0) * r.spot_sold / 1000.0)
            .sum();
        per_slot / self.records.len() as f64
    }

    /// The operator's profit summary under `billing`.
    #[must_use]
    pub fn profit(&self, billing: &Billing) -> ProfitSummary {
        let headroom_total: Watts = self.headrooms.iter().copied().sum();
        ProfitSummary {
            baseline_rate: billing.reservation_rate(self.total_subscribed)
                - billing.infra_amortization(self.ups_capacity),
            spot_revenue_rate: self.spot_revenue_rate(),
            headroom_cost_rate: billing.headroom_amortization(headroom_total),
        }
    }

    /// Tenant `i`'s cumulative bill over the horizon.
    #[must_use]
    pub fn tenant_bill(&self, i: usize, billing: &Billing) -> TenantBill {
        let hours = self.hours();
        let slot_hours = self.slot.hours();
        let mut energy = 0.0;
        let mut spot = 0.0;
        for r in &self.records {
            if let Some(t) = r.tenants.get(i) {
                energy += billing.energy_rate_for(Watts::new(t.draw)) * slot_hours;
                spot += t.payment;
            }
        }
        TenantBill {
            reservation: billing.reservation_rate(self.subscriptions[i]) * hours,
            energy,
            spot,
        }
    }

    /// Tenant `i`'s average performance index, optionally restricted to
    /// the slots in which it wanted spot capacity (the paper averages
    /// "over all the time slots whenever tenants need spot capacity").
    /// Returns 0 when no qualifying slot exists.
    #[must_use]
    pub fn tenant_avg_perf(&self, i: usize, only_wanted: bool) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in &self.records {
            if let Some(t) = r.tenants.get(i) {
                if only_wanted && !t.wanted {
                    continue;
                }
                if t.perf_index.is_finite() && t.perf_index > 0.0 {
                    sum += t.perf_index;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Tenant `i`'s performance ratio versus a baseline run over
    /// wanting slots, or `None` when the tenant never wanted spot
    /// capacity in either run (short horizons at hyper-scale leave some
    /// tenants idle; a 0/0 ratio must not pollute averages).
    #[must_use]
    pub fn tenant_perf_ratio_vs(&self, base: &SimReport, i: usize) -> Option<f64> {
        let ours = self.tenant_avg_perf(i, true);
        let theirs = base.tenant_avg_perf(i, true);
        if ours <= 0.0 || theirs <= 0.0 {
            None
        } else {
            Some(ours / theirs)
        }
    }

    /// The average of [`Self::tenant_perf_ratio_vs`] across tenants with
    /// a defined ratio; 1.0 when none qualify.
    #[must_use]
    pub fn avg_perf_ratio_vs(&self, base: &SimReport) -> f64 {
        let ratios: Vec<f64> = (0..self.tenant_count())
            .filter_map(|i| self.tenant_perf_ratio_vs(base, i))
            .collect();
        if ratios.is_empty() {
            1.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// Tenant `i`'s SLO violation rate over slots where it had load
    /// (`None` for opportunistic tenants).
    #[must_use]
    pub fn tenant_slo_violation_rate(&self, i: usize) -> Option<f64> {
        let mut violations = 0usize;
        let mut n = 0usize;
        for r in &self.records {
            if let Some(t) = r.tenants.get(i) {
                if let Some(met) = t.slo_met {
                    n += 1;
                    if !met {
                        violations += 1;
                    }
                }
            }
        }
        if n == 0 {
            None
        } else {
            Some(violations as f64 / n as f64)
        }
    }

    /// Tenant `i`'s maximum and average spot usage as a percentage of
    /// its subscription (Fig. 12c); the average is over slots with a
    /// positive grant. Returns `(max %, avg %)`.
    #[must_use]
    pub fn tenant_spot_usage_percent(&self, i: usize) -> (f64, f64) {
        let sub = self.subscriptions[i].value();
        if sub <= 0.0 {
            return (0.0, 0.0);
        }
        let mut max = 0.0f64;
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in &self.records {
            if let Some(t) = r.tenants.get(i) {
                if t.grant > 0.0 {
                    let pct = 100.0 * t.grant / sub;
                    max = max.max(pct);
                    sum += pct;
                    n += 1;
                }
            }
        }
        (max, if n == 0 { 0.0 } else { sum / n as f64 })
    }

    /// Fraction of slots in which tenant `i` received any spot grant.
    #[must_use]
    pub fn tenant_grant_fraction(&self, i: usize) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let hits = self
            .records
            .iter()
            .filter(|r| r.tenants.get(i).is_some_and(|t| t.grant > 0.0))
            .count();
        hits as f64 / self.records.len() as f64
    }

    /// Market prices over slots where spot capacity was sold
    /// (Fig. 13a).
    #[must_use]
    pub fn price_cdf(&self) -> Cdf {
        Cdf::from_samples(self.records.iter().filter_map(|r| r.price))
    }

    /// UPS power normalized to the UPS capacity (Fig. 13b / Fig. 2b).
    #[must_use]
    pub fn ups_utilization_cdf(&self) -> Cdf {
        let cap = self.ups_capacity.value().max(1e-9);
        Cdf::from_samples(self.records.iter().map(|r| r.ups_power / cap))
    }

    /// Average predicted spot capacity as a fraction of the total
    /// subscribed capacity (the paper's availability axis).
    #[must_use]
    pub fn avg_spot_available_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let avg: f64 =
            self.records.iter().map(|r| r.spot_available).sum::<f64>() / self.records.len() as f64;
        avg / self.total_subscribed.value().max(1e-9)
    }

    /// Average spot capacity sold per slot, W.
    #[must_use]
    pub fn avg_spot_sold(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.spot_sold).sum::<f64>() / self.records.len() as f64
    }

    /// Number of participating tenants tracked.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.subscriptions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> SimReport {
        let t0 = TenantSlotMetrics {
            wanted: true,
            grant: 30.0,
            draw: 150.0,
            perf_index: 10.0,
            slo_met: Some(true),
            cost_rate: 0.01,
            payment: 0.002,
        };
        let t1 = TenantSlotMetrics {
            wanted: false,
            grant: 0.0,
            draw: 80.0,
            perf_index: 40.0,
            slo_met: None,
            cost_rate: 0.0,
            payment: 0.0,
        };
        SimReport {
            records: vec![
                SlotRecord {
                    slot: 0,
                    price: Some(0.2),
                    spot_available: 100.0,
                    spot_sold: 30.0,
                    ups_power: 1000.0,
                    pdu_power: vec![500.0, 500.0],
                    tenants: vec![t0, t1],
                },
                SlotRecord {
                    slot: 1,
                    price: None,
                    spot_available: 120.0,
                    spot_sold: 0.0,
                    ups_power: 900.0,
                    pdu_power: vec![450.0, 450.0],
                    tenants: vec![
                        TenantSlotMetrics {
                            wanted: false,
                            grant: 0.0,
                            draw: 100.0,
                            perf_index: 20.0,
                            slo_met: Some(false),
                            cost_rate: 0.02,
                            payment: 0.0,
                        },
                        t1,
                    ],
                },
            ],
            slot: SlotDuration::from_secs(120),
            subscriptions: vec![Watts::new(145.0), Watts::new(125.0)],
            headrooms: vec![Watts::new(72.5), Watts::new(62.5)],
            total_subscribed: Watts::new(520.0),
            ups_capacity: Watts::new(1370.0),
            emergencies: 0,
            transient_overshoots: 0,
            degraded_slots: 0,
            invariant_violations: 0,
            faults_injected: 0,
        }
    }

    #[test]
    fn revenue_rate_averages_over_slots() {
        let r = tiny_report();
        // Slot 0: 0.2 $/kWh × 0.030 kW = 0.006 $/h; slot 1: 0. Avg 0.003.
        assert!((r.spot_revenue_rate() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn tenant_bill_components() {
        let r = tiny_report();
        let b = Billing::paper_defaults();
        let bill = r.tenant_bill(0, &b);
        let hours = 2.0 * 120.0 / 3600.0;
        assert!((bill.reservation - b.reservation_rate(Watts::new(145.0)) * hours).abs() < 1e-9);
        assert!((bill.spot - 0.002).abs() < 1e-12);
        assert!(bill.energy > 0.0);
    }

    #[test]
    fn perf_averaging_respects_wanted_filter() {
        let r = tiny_report();
        assert!((r.tenant_avg_perf(0, true) - 10.0).abs() < 1e-12);
        assert!((r.tenant_avg_perf(0, false) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn slo_violation_rate() {
        let r = tiny_report();
        assert_eq!(r.tenant_slo_violation_rate(0), Some(0.5));
        assert_eq!(r.tenant_slo_violation_rate(1), None);
    }

    #[test]
    fn spot_usage_stats() {
        let r = tiny_report();
        let (max, avg) = r.tenant_spot_usage_percent(0);
        let expect = 100.0 * 30.0 / 145.0;
        assert!((max - expect).abs() < 1e-9);
        assert!((avg - expect).abs() < 1e-9);
        assert_eq!(r.tenant_spot_usage_percent(1), (0.0, 0.0));
        assert!((r.tenant_grant_fraction(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdfs_and_availability() {
        let r = tiny_report();
        assert_eq!(r.price_cdf().len(), 1);
        let u = r.ups_utilization_cdf();
        assert_eq!(u.len(), 2);
        assert!(u.max().unwrap() <= 1.0);
        assert!((r.avg_spot_available_fraction() - 110.0 / 520.0).abs() < 1e-12);
        assert!((r.avg_spot_sold() - 15.0).abs() < 1e-12);
    }
}
