//! Emergency power capping: the response half of emergency handling.
//!
//! [`EmergencyLog`](crate::EmergencyLog) only *detects* overloads; the
//! paper defers sustained capping to its companion COOP market. The
//! [`CapController`] closes the loop for the simulation: every slot it
//! projects each shared capacity (PDU and UPS) against the previous
//! slot's base (non-spot) load and trims the spot grants that would not
//! fit — **spot before guaranteed**. Only while a level is in emergency
//! hold (an overload was actually observed) and its base load alone
//! exceeds the capacity does the controller touch guaranteed budgets,
//! scaling them proportionally like a conventional power capper.
//!
//! Hysteresis: once an overload fires at a level, the controller holds
//! that level closed to spot for at least `hold_slots` slots and until
//! its base load drops below `capacity · (1 − release)`, so a load
//! hovering at the boundary cannot flap spot capacity on and off every
//! slot.

use spotdc_units::{PduId, RackId, Slot, Watts};

use crate::emergency::{EmergencyEvent, EmergencyLevel};
use crate::rack_pdu::RackPduBank;
use crate::topology::PowerTopology;

/// Configuration for the [`CapController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapConfig {
    /// Whether the controller runs at all.
    pub enabled: bool,
    /// Safety margin applied when projecting spot room against each
    /// capacity: spot may fill up to `capacity · (1 − margin)` minus
    /// the base load.
    pub margin: f64,
    /// Hysteresis release threshold: a held level reopens to spot only
    /// once its base load is below `capacity · (1 − release)`.
    pub release: f64,
    /// Minimum number of slots a level stays held after an overload.
    pub hold_slots: u64,
}

impl CapConfig {
    /// Controller off (the engine default — no behaviour change).
    #[must_use]
    pub fn disabled() -> Self {
        CapConfig {
            enabled: false,
            margin: 0.0,
            release: 0.0,
            hold_slots: 0,
        }
    }

    /// The defaults the `robustness` experiment uses: a 2 % projection
    /// margin, 5 % release threshold, three-slot hold.
    #[must_use]
    pub fn paper_default() -> Self {
        CapConfig {
            enabled: true,
            margin: 0.02,
            release: 0.05,
            hold_slots: 3,
        }
    }
}

impl Default for CapConfig {
    fn default() -> Self {
        CapConfig::disabled()
    }
}

/// One rack whose spot grant was trimmed by the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotTrim {
    /// The trimmed rack.
    pub rack: RackId,
    /// Spot grant before the trim.
    pub old_spot: Watts,
    /// Spot grant after the trim.
    pub new_spot: Watts,
}

/// Per-level summary of one [`CapController::enforce`] pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapAction {
    /// The capacity boundary the action protected.
    pub level: EmergencyLevel,
    /// Spot watts shed at this level.
    pub shed: Watts,
    /// Guaranteed watts capped at this level (only under active hold).
    pub capped: Watts,
}

/// Everything one enforcement pass did.
#[derive(Debug, Clone, Default)]
pub struct CapOutcome {
    /// Per-level actions with nonzero shed or cap.
    pub actions: Vec<CapAction>,
    /// Every rack whose spot grant changed, in rack order.
    pub trims: Vec<SpotTrim>,
}

impl CapOutcome {
    /// Whether the pass changed anything.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.actions.is_empty() && self.trims.is_empty()
    }

    /// Total spot watts shed across levels.
    #[must_use]
    pub fn total_shed(&self) -> Watts {
        self.actions.iter().map(|a| a.shed).sum()
    }
}

/// Sheds spot allocations (and, during an active emergency, caps
/// guaranteed budgets) to keep every shared capacity safe.
///
/// # Examples
///
/// ```
/// use spotdc_power::{CapConfig, CapController, RackPduBank, topology::TopologyBuilder};
/// use spotdc_units::{RackId, Slot, TenantId, Watts};
///
/// let topo = TopologyBuilder::new(Watts::new(200.0))
///     .pdu(Watts::new(100.0))
///     .rack(TenantId::new(0), Watts::new(40.0), Watts::new(30.0))
///     .build()?;
/// let mut bank = RackPduBank::new(&topo);
/// bank.grant_spot(Slot::ZERO, RackId::new(0), Watts::new(30.0))?;
/// let mut cap = CapController::new(&topo, CapConfig { enabled: true, ..CapConfig::paper_default() });
/// // Base load 90 W on a 100 W PDU: only ~8 W of spot fits under the margin.
/// let out = cap.enforce(Slot::ZERO, &[Watts::new(90.0)], &mut bank);
/// assert!(bank.spot_grant(RackId::new(0)) < Watts::new(30.0));
/// assert!(!out.is_noop());
/// # Ok::<(), spotdc_power::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CapController {
    config: CapConfig,
    pdu_caps: Vec<Watts>,
    ups_cap: Watts,
    rack_pdu: Vec<PduId>,
    guaranteed: Vec<Watts>,
    /// Slot index at which each PDU (and the UPS) entered hold.
    pdu_hold: Vec<Option<u64>>,
    ups_hold: Option<u64>,
}

impl CapController {
    /// Creates a controller bound to `topology`'s capacities.
    #[must_use]
    pub fn new(topology: &PowerTopology, config: CapConfig) -> Self {
        CapController {
            config,
            pdu_caps: topology
                .pdus()
                .map(|p| topology.pdu_capacity(p).expect("pdu from topology"))
                .collect(),
            ups_cap: topology.ups_capacity(),
            rack_pdu: topology.racks().map(|r| r.pdu()).collect(),
            guaranteed: topology.racks().map(|r| r.guaranteed()).collect(),
            pdu_hold: vec![None; topology.pdu_count()],
            ups_hold: None,
        }
    }

    /// The controller's configuration.
    #[must_use]
    pub fn config(&self) -> &CapConfig {
        &self.config
    }

    /// Whether `level` is currently in emergency hold.
    #[must_use]
    pub fn is_held(&self, level: EmergencyLevel) -> bool {
        match level {
            EmergencyLevel::Pdu(p) => self.pdu_hold.get(p.index()).copied().flatten().is_some(),
            EmergencyLevel::Ups => self.ups_hold.is_some(),
        }
    }

    /// The hysteresis hold state: the slot index at which each PDU
    /// entered hold (`None` when free), and likewise for the UPS.
    #[must_use]
    pub fn hold_state(&self) -> (Vec<Option<u64>>, Option<u64>) {
        (self.pdu_hold.clone(), self.ups_hold)
    }

    /// Overwrites the hysteresis hold state, for crash recovery.
    ///
    /// # Panics
    ///
    /// Panics if `pdu_hold` does not match the controller's PDU count.
    pub fn restore_hold_state(&mut self, pdu_hold: Vec<Option<u64>>, ups_hold: Option<u64>) {
        assert_eq!(
            pdu_hold.len(),
            self.pdu_hold.len(),
            "restored hold state must match the topology's PDU count"
        );
        self.pdu_hold = pdu_hold;
        self.ups_hold = ups_hold;
    }

    /// Feeds the slot's detected overloads back into the hysteresis
    /// state: each affected level enters (or re-enters) hold at `slot`.
    pub fn note_emergencies(&mut self, slot: Slot, events: &[EmergencyEvent]) {
        for e in events {
            match e.level {
                EmergencyLevel::Pdu(p) => {
                    if let Some(h) = self.pdu_hold.get_mut(p.index()) {
                        *h = Some(slot.index());
                    }
                }
                EmergencyLevel::Ups => self.ups_hold = Some(slot.index()),
            }
        }
    }

    /// Trims the spot grants programmed in `bank` so every shared
    /// capacity fits `base_pdu` (the per-PDU non-spot load, normally
    /// last slot's observation) plus the surviving spot. Held levels
    /// admit no spot at all; a held level whose base load alone exceeds
    /// its capacity additionally gets its guaranteed budgets scaled
    /// down proportionally.
    ///
    /// Rack walk order is ascending rack index, so earlier racks keep
    /// their grants and later ones absorb the shedding — deterministic
    /// under any worker count.
    pub fn enforce(
        &mut self,
        slot: Slot,
        base_pdu: &[Watts],
        bank: &mut RackPduBank,
    ) -> CapOutcome {
        let mut out = CapOutcome::default();
        if !self.config.enabled {
            return out;
        }
        let base_at = |i: usize| base_pdu.get(i).copied().unwrap_or(Watts::ZERO);
        let base_total: Watts = (0..self.pdu_caps.len()).map(base_at).sum();

        // Hysteresis release: a level reopens once the hold has aged
        // out and the base load has retreated below the release line.
        let release = self.config.release;
        let hold_slots = self.config.hold_slots;
        for (i, hold) in self.pdu_hold.iter_mut().enumerate() {
            if let Some(since) = *hold {
                let aged = slot.index() >= since.saturating_add(hold_slots);
                if aged && base_at(i) <= self.pdu_caps[i] * (1.0 - release) {
                    *hold = None;
                }
            }
        }
        if let Some(since) = self.ups_hold {
            let aged = slot.index() >= since.saturating_add(hold_slots);
            if aged && base_total <= self.ups_cap * (1.0 - release) {
                self.ups_hold = None;
            }
        }

        // Per-level spot allowance: margin-limited headroom normally,
        // zero while held.
        let margin = self.config.margin;
        let mut pdu_room: Vec<Watts> = (0..self.pdu_caps.len())
            .map(|i| {
                if self.pdu_hold[i].is_some() {
                    Watts::ZERO
                } else {
                    (self.pdu_caps[i] * (1.0 - margin) - base_at(i)).clamp_non_negative()
                }
            })
            .collect();
        let mut ups_room = if self.ups_hold.is_some() {
            Watts::ZERO
        } else {
            (self.ups_cap * (1.0 - margin) - base_total).clamp_non_negative()
        };

        // Spot-before-guaranteed: walk racks in index order, keeping
        // each grant only as far as every level above it has room.
        let mut pdu_shed = vec![Watts::ZERO; self.pdu_caps.len()];
        let mut ups_shed = Watts::ZERO;
        for i in 0..self.rack_pdu.len() {
            let rack = RackId::new(i);
            let grant = bank.spot_grant(rack);
            if grant <= Watts::ZERO {
                continue;
            }
            let p = self.rack_pdu[i].index();
            let after_pdu = grant.min(pdu_room[p]);
            let after_ups = after_pdu.min(ups_room);
            pdu_room[p] = (pdu_room[p] - after_ups).clamp_non_negative();
            ups_room = (ups_room - after_ups).clamp_non_negative();
            if after_ups < grant {
                bank.grant_spot(slot, rack, after_ups)
                    .expect("trimmed grant is within the original grant");
                pdu_shed[p] += grant - after_pdu;
                ups_shed += after_pdu - after_ups;
                out.trims.push(SpotTrim {
                    rack,
                    old_spot: grant,
                    new_spot: after_ups,
                });
            }
        }

        // Guaranteed capping: only a held level whose base load alone
        // overshoots gets its guarantees scaled (proportional capping,
        // the conventional power-capper behaviour).
        let mut pdu_capped = vec![Watts::ZERO; self.pdu_caps.len()];
        let mut ups_capped = Watts::ZERO;
        for (p, capped) in pdu_capped.iter_mut().enumerate() {
            let base = base_at(p);
            if self.pdu_hold[p].is_some() && base > self.pdu_caps[p] && base > Watts::ZERO {
                let factor = self.pdu_caps[p].value() / base.value();
                for i in 0..self.rack_pdu.len() {
                    if self.rack_pdu[i].index() != p {
                        continue;
                    }
                    let rack = RackId::new(i);
                    let old = bank.budget(rack);
                    let limit = old * factor;
                    bank.cap_budget(slot, rack, limit)
                        .expect("scaled budget is finite and non-negative");
                    *capped += old - bank.budget(rack);
                }
            }
        }
        if self.ups_hold.is_some() && base_total > self.ups_cap && base_total > Watts::ZERO {
            let factor = self.ups_cap.value() / base_total.value();
            for i in 0..self.rack_pdu.len() {
                let rack = RackId::new(i);
                let old = bank.budget(rack);
                let limit = old * factor;
                bank.cap_budget(slot, rack, limit)
                    .expect("scaled budget is finite and non-negative");
                ups_capped += old - bank.budget(rack);
            }
        }

        for p in 0..self.pdu_caps.len() {
            if pdu_shed[p] > Watts::ZERO || pdu_capped[p] > Watts::ZERO {
                out.actions.push(CapAction {
                    level: EmergencyLevel::Pdu(PduId::new(p)),
                    shed: pdu_shed[p],
                    capped: pdu_capped[p],
                });
            }
        }
        if ups_shed > Watts::ZERO || ups_capped > Watts::ZERO {
            out.actions.push(CapAction {
                level: EmergencyLevel::Ups,
                shed: ups_shed,
                capped: ups_capped,
            });
        }

        if spotdc_telemetry::is_enabled() && !out.actions.is_empty() {
            let registry = spotdc_telemetry::registry();
            registry.inc_counter("spotdc_cap_actions_total", out.actions.len() as u64);
            for a in &out.actions {
                spotdc_telemetry::emit(spotdc_telemetry::Event::CapApplied {
                    slot,
                    at: spotdc_units::MonotonicNanos::now(),
                    level: a.level.to_string(),
                    shed_watts: a.shed.value(),
                    capped_watts: a.capped.value(),
                });
            }
        }
        let _ = &self.guaranteed; // reserved for future per-rack floors
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use spotdc_units::TenantId;

    fn topo() -> PowerTopology {
        TopologyBuilder::new(Watts::new(190.0))
            .pdu(Watts::new(100.0))
            .rack(TenantId::new(0), Watts::new(40.0), Watts::new(20.0))
            .rack(TenantId::new(1), Watts::new(40.0), Watts::new(20.0))
            .pdu(Watts::new(100.0))
            .rack(TenantId::new(2), Watts::new(80.0), Watts::new(20.0))
            .build()
            .unwrap()
    }

    fn controller(config: CapConfig) -> (CapController, RackPduBank) {
        let t = topo();
        (CapController::new(&t, config), RackPduBank::new(&t))
    }

    fn cfg() -> CapConfig {
        CapConfig {
            enabled: true,
            margin: 0.0,
            release: 0.05,
            hold_slots: 3,
        }
    }

    #[test]
    fn disabled_controller_is_a_noop() {
        let (mut c, mut bank) = controller(CapConfig::disabled());
        bank.grant_spot(Slot::ZERO, RackId::new(0), Watts::new(20.0))
            .unwrap();
        let out = c.enforce(Slot::ZERO, &[Watts::new(99.0), Watts::ZERO], &mut bank);
        assert!(out.is_noop());
        assert_eq!(bank.spot_grant(RackId::new(0)), Watts::new(20.0));
    }

    #[test]
    fn sheds_spot_before_guaranteed() {
        let (mut c, mut bank) = controller(cfg());
        bank.grant_spot(Slot::ZERO, RackId::new(0), Watts::new(20.0))
            .unwrap();
        bank.grant_spot(Slot::ZERO, RackId::new(1), Watts::new(20.0))
            .unwrap();
        // Base 70 W on the 100 W PDU: only 30 W of spot fits. Rack 0
        // (earlier index) keeps its grant; rack 1 absorbs the shed.
        let out = c.enforce(Slot::ZERO, &[Watts::new(70.0), Watts::ZERO], &mut bank);
        assert_eq!(bank.spot_grant(RackId::new(0)), Watts::new(20.0));
        assert_eq!(bank.spot_grant(RackId::new(1)), Watts::new(10.0));
        // Guaranteed budgets untouched: spot is shed first.
        assert_eq!(bank.budget(RackId::new(0)), Watts::new(60.0));
        assert!(bank.budget(RackId::new(1)) >= Watts::new(40.0));
        assert_eq!(out.trims.len(), 1);
        assert_eq!(out.total_shed(), Watts::new(10.0));
    }

    #[test]
    fn ups_room_limits_across_pdus() {
        let (mut c, mut bank) = controller(cfg());
        bank.grant_spot(Slot::ZERO, RackId::new(2), Watts::new(20.0))
            .unwrap();
        // PDU 1 alone has room (80 + 20 ≤ 100) but the UPS does not:
        // base 95 + 80 = 175, UPS 190 ⇒ only 15 W of spot fits.
        let out = c.enforce(Slot::ZERO, &[Watts::new(95.0), Watts::new(80.0)], &mut bank);
        assert_eq!(bank.spot_grant(RackId::new(2)), Watts::new(15.0));
        assert_eq!(out.actions.len(), 1);
        assert_eq!(out.actions[0].level, EmergencyLevel::Ups);
        assert_eq!(out.actions[0].shed, Watts::new(5.0));
    }

    #[test]
    fn held_level_admits_no_spot_with_hysteresis() {
        let (mut c, mut bank) = controller(cfg());
        let event = EmergencyEvent {
            slot: Slot::new(10),
            level: EmergencyLevel::Pdu(spotdc_units::PduId::new(0)),
            load: Watts::new(120.0),
            capacity: Watts::new(100.0),
        };
        c.note_emergencies(Slot::new(10), &[event]);
        assert!(c.is_held(EmergencyLevel::Pdu(spotdc_units::PduId::new(0))));
        // Low base load, but the hold has not aged out: no spot.
        bank.grant_spot(Slot::new(11), RackId::new(0), Watts::new(10.0))
            .unwrap();
        c.enforce(Slot::new(11), &[Watts::new(50.0), Watts::ZERO], &mut bank);
        assert_eq!(bank.spot_grant(RackId::new(0)), Watts::ZERO);
        // Aged out (10 + 3 = 13) and base below the release line: the
        // hold clears and spot flows again.
        bank.reset_all(Slot::new(13));
        bank.grant_spot(Slot::new(13), RackId::new(0), Watts::new(10.0))
            .unwrap();
        c.enforce(Slot::new(13), &[Watts::new(50.0), Watts::ZERO], &mut bank);
        assert!(!c.is_held(EmergencyLevel::Pdu(spotdc_units::PduId::new(0))));
        assert_eq!(bank.spot_grant(RackId::new(0)), Watts::new(10.0));
    }

    #[test]
    fn held_overloaded_level_caps_guarantees_proportionally() {
        let (mut c, mut bank) = controller(cfg());
        let event = EmergencyEvent {
            slot: Slot::ZERO,
            level: EmergencyLevel::Pdu(spotdc_units::PduId::new(0)),
            load: Watts::new(110.0),
            capacity: Watts::new(100.0),
        };
        c.note_emergencies(Slot::ZERO, &[event]);
        // Base load 110 W alone exceeds the 100 W PDU: guarantees on
        // that PDU scale by 100/110.
        let out = c.enforce(Slot::new(1), &[Watts::new(110.0), Watts::ZERO], &mut bank);
        let factor = 100.0 / 110.0;
        assert!(bank
            .budget(RackId::new(0))
            .approx_eq(Watts::new(40.0) * factor, 1e-9));
        assert!(bank
            .budget(RackId::new(1))
            .approx_eq(Watts::new(40.0) * factor, 1e-9));
        // The other PDU's rack is untouched.
        assert_eq!(bank.budget(RackId::new(2)), Watts::new(80.0));
        let act = out
            .actions
            .iter()
            .find(|a| a.level == EmergencyLevel::Pdu(spotdc_units::PduId::new(0)))
            .unwrap();
        assert!(act.capped.value() > 0.0);
    }
}
