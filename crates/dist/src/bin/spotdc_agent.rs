//! The shard agent executable: one half of SpotDC's distributed mode.
//!
//! Speaks the framed wire protocol on stdin/stdout — length-prefixed,
//! CRC-32-checked payloads carrying [`spotdc_core::WireMsg`] — and
//! clears whatever slot frames the controller sends. The agent holds a
//! *session* (static constraint layers, held bid books, warm clearing
//! engines) so the controller can ship deltas between slots, but all
//! cross-slot market state — balances, meters, emergencies — lives at
//! the controller; losing this process loses nothing but a cache.
//!
//! Exit status: 0 after a clean `Shutdown`, 1 on a damaged stream,
//! an undecodable payload, or end of input without `Shutdown`.

use std::io::{self, Read, Write};
use std::process::ExitCode;

use spotdc_core::{frame, WireMsg};
use spotdc_dist::AgentLoop;

fn main() -> ExitCode {
    let mut stdin = io::stdin().lock();
    let mut stdout = io::stdout().lock();
    match serve(&mut stdin, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("spotdc-agent: {err}");
            ExitCode::FAILURE
        }
    }
}

fn serve(input: &mut impl Read, output: &mut impl Write) -> io::Result<()> {
    let mut agent = AgentLoop::new();
    // One recycled buffer per direction: frames arrive and leave every
    // slot, and the reply is written to the pipe in a single write.
    let mut payload = Vec::new();
    let mut reply_payload = Vec::new();
    let mut reply_frame = Vec::new();
    loop {
        if !frame::read_frame_into(input, &mut payload)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "controller closed the stream without Shutdown",
            ));
        }
        let msg = WireMsg::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if matches!(msg, WireMsg::Shutdown) {
            return Ok(());
        }
        if let Some(reply) = agent.handle(msg) {
            reply_payload = reply.encode_into(reply_payload);
            reply_frame.clear();
            frame::write_frame(&mut reply_frame, &reply_payload)?;
            output.write_all(&reply_frame)?;
            output.flush()?;
        }
    }
}
