//! Uniform-price market clearing (Eq. 1 subject to Eqns. 2–4).
//!
//! The operator chooses one price `q` maximizing revenue
//! `q · Σ_r D_r(q)` over prices at which the induced demands fit every
//! capacity constraint. Because all demand functions are non-increasing
//! in price, the feasible set is upward-closed: raising the price only
//! sheds demand, so a sufficiently high price is always feasible and
//! selling spot capacity can never create a power emergency.
//!
//! Two search strategies are provided:
//!
//! * [`ClearingAlgorithm::GridScan`] — the paper's method: evaluate
//!   every multiple of a configurable price step (0.1–1 ¢/kW in the
//!   paper) up to the highest bid ceiling. Simple, predictable,
//!   sub-second even at 15 000 racks (Fig. 7b).
//! * [`ClearingAlgorithm::KinkSearch`] — an exact refinement: revenue
//!   is piece-wise quadratic in `q` between the finitely many *kink
//!   prices* of the aggregate (headroom-clipped) demand, so the optimum
//!   lies at a kink, just above a discontinuity, or at an interior
//!   quadratic vertex — all enumerable in `O(K log K)`. Used to
//!   validate the grid scan and as the ablation in DESIGN.md.
//!
//! Either way, the hot path evaluates candidates against a *columnar
//! bid book* ([`BidBook`]): live bids are decomposed once per slot into
//! flat arrays of headroom, PDU slot, and demand segments, candidate
//! prices are swept in ascending order with one monotone segment cursor
//! per bid (O(1) amortized per bid per sweep), and per-PDU/UPS sums are
//! accumulated in recycled SoA buffers. When only `k` bids changed
//! since the previous slot (per-bid fingerprints), only the price rows
//! those bids perturbed are re-summed — and when nothing changed, the
//! cached sums are reused outright. Every mode produces bit-identical
//! outcomes to the straightforward per-candidate scan (DESIGN.md §13),
//! which remains in the code as the fallback for heat-zone/phase
//! constrained markets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use spotdc_units::{Price, Slot, Watts};

use crate::allocation::SpotAllocation;
use crate::bid::RackBid;
use crate::constraints::{ConstraintSet, TOLERANCE};
use crate::demand::{DemandBid, EPS};

/// Offset used to probe "just above" a discontinuity price.
const JUST_ABOVE: f64 = 1e-9;

/// Which price-search strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClearingAlgorithm {
    /// Evaluate every multiple of the configured step (paper default).
    GridScan,
    /// Enumerate demand kinks and quadratic revenue vertices.
    KinkSearch,
}

/// Configuration for the clearing search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClearingConfig {
    /// The search strategy.
    pub algorithm: ClearingAlgorithm,
    /// Grid step (ignored by [`ClearingAlgorithm::KinkSearch`]).
    pub price_step: Price,
}

impl ClearingConfig {
    /// The paper's default: grid scan at 0.1 ¢/kW/h.
    #[must_use]
    pub fn grid(step: Price) -> Self {
        ClearingConfig {
            algorithm: ClearingAlgorithm::GridScan,
            price_step: step,
        }
    }

    /// Exact kink-based search.
    #[must_use]
    pub fn kink_search() -> Self {
        ClearingConfig {
            algorithm: ClearingAlgorithm::KinkSearch,
            price_step: Price::cents_per_kw_hour(0.1),
        }
    }
}

impl Default for ClearingConfig {
    fn default() -> Self {
        ClearingConfig::grid(Price::cents_per_kw_hour(0.1))
    }
}

/// The result of clearing one slot's market.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketOutcome {
    allocation: SpotAllocation,
    /// Revenue rate in $/hour at the clearing price.
    revenue_rate: f64,
    /// Number of candidate prices evaluated (search-cost metric).
    candidates: usize,
}

impl MarketOutcome {
    /// The resulting spot allocation (possibly empty).
    #[must_use]
    pub fn allocation(&self) -> &SpotAllocation {
        &self.allocation
    }

    /// Consumes the outcome, yielding the allocation.
    #[must_use]
    pub fn into_allocation(self) -> SpotAllocation {
        self.allocation
    }

    /// The uniform clearing price.
    #[must_use]
    pub fn price(&self) -> Price {
        self.allocation.price()
    }

    /// Total spot capacity sold.
    #[must_use]
    pub fn sold(&self) -> Watts {
        self.allocation.total()
    }

    /// The operator's revenue rate at the clearing price, $/hour.
    #[must_use]
    pub fn revenue_rate(&self) -> f64 {
        self.revenue_rate
    }

    /// Number of candidate prices the search evaluated.
    #[must_use]
    pub fn candidates_evaluated(&self) -> usize {
        self.candidates
    }
}

impl spotdc_durable::Persist for MarketOutcome {
    fn persist(&self, enc: &mut spotdc_durable::Encoder) {
        self.allocation.persist(enc);
        enc.put_f64(self.revenue_rate);
        enc.put_usize(self.candidates);
    }

    fn restore(dec: &mut spotdc_durable::Decoder<'_>) -> Result<Self, spotdc_durable::DecodeError> {
        Ok(MarketOutcome {
            allocation: SpotAllocation::restore(dec)?,
            revenue_rate: dec.get_f64()?,
            candidates: dec.get_usize()?,
        })
    }
}

/// The market-clearing engine.
///
/// # Examples
///
/// ```
/// use spotdc_core::{demand::StepBid, ClearingConfig, ConstraintSet, MarketClearing, RackBid};
/// use spotdc_power::topology::TopologyBuilder;
/// use spotdc_units::{Price, RackId, Slot, TenantId, Watts};
///
/// let topo = TopologyBuilder::new(Watts::new(300.0))
///     .pdu(Watts::new(200.0))
///     .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
///     .build()?;
/// let cs = ConstraintSet::new(&topo, vec![Watts::new(50.0)], Watts::new(50.0));
/// let bids = vec![RackBid::new(
///     RackId::new(0),
///     StepBid::new(Watts::new(40.0), Price::per_kw_hour(0.3))?.into(),
/// )];
/// let outcome = MarketClearing::new(ClearingConfig::default()).clear(Slot::ZERO, &bids, &cs);
/// // A lone step bid clears at its own price cap.
/// assert_eq!(outcome.sold(), Watts::new(40.0));
/// assert!((outcome.price().per_kw_hour_value() - 0.3).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MarketClearing {
    config: ClearingConfig,
    /// Pool of reusable candidate scratch buffers, one per concurrent
    /// clearing. Each worker grabs the first free slot with `try_lock`
    /// and holds it for the whole clearing, so parallel per-PDU clears
    /// never serialize on a shared lock; when all slots are busy a
    /// stack-local scratch is used instead (correct, just cold).
    /// A poisoned slot — a panic mid-clearing — is simply never
    /// reacquired: its cached key/candidate state may be torn, and
    /// abandoning it is cheaper than proving it consistent.
    scratch: [Mutex<Scratch>; SCRATCH_SLOTS],
    /// Sweep-mode counters, updated with relaxed atomics on every
    /// clearing regardless of telemetry state.
    stats: CacheStats,
}

/// Number of scratch buffers in the pool; clears beyond this many at
/// once fall back to a fresh stack-local buffer.
const SCRATCH_SLOTS: usize = 8;

/// A delta re-clear is attempted only while the number of changed bids
/// stays at or below `live / DELTA_CHURN_DIVISOR` (at least one): past
/// that, marking affected price rows costs about as much as re-summing
/// everything, so the full sweep wins.
const DELTA_CHURN_DIVISOR: usize = 8;

/// Internal sweep-mode counters (relaxed atomics so concurrent per-PDU
/// clears never contend). Snapshot via [`MarketClearing::cache_stats`].
#[derive(Debug, Default)]
struct CacheStats {
    full_sweeps: AtomicU64,
    cache_hits: AtomicU64,
    delta_sweeps: AtomicU64,
    legacy_scans: AtomicU64,
    candidates_total: AtomicU64,
    candidates_swept: AtomicU64,
}

/// A snapshot of one engine's clearing-cache effectiveness counters.
///
/// `full_sweeps + cache_hits + delta_sweeps + legacy_scans` equals the
/// number of non-empty markets cleared; `candidates_swept` out of
/// `candidates_total` measures how much per-candidate work the cache
/// actually avoided (a hit sweeps zero rows, a delta only the rows the
/// changed bids perturbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClearingCacheStats {
    /// Markets swept from scratch (cold cache or over-threshold churn).
    pub full_sweeps: u64,
    /// Markets served entirely from cached per-candidate sums.
    pub cache_hits: u64,
    /// Markets where only the changed bids' price rows were re-summed.
    pub delta_sweeps: u64,
    /// Markets routed through the legacy per-candidate scan (heat-zone
    /// or phase-balance constraints, or a bid on an unknown PDU).
    pub legacy_scans: u64,
    /// Candidate prices considered across all clearings.
    pub candidates_total: u64,
    /// Candidate prices actually (re-)summed across all clearings.
    pub candidates_swept: u64,
}

/// One worker's reusable clearing state: the candidate-price buffer,
/// the market fingerprint it was generated for (the cross-slot cache),
/// and the columnar bid book plus per-candidate sum buffers the sweep
/// recycles between slots.
#[derive(Debug, Default)]
struct Scratch {
    /// Fingerprint of the market `candidates` was generated for.
    key: Vec<u64>,
    /// Staging buffer for the current market's fingerprint.
    next_key: Vec<u64>,
    /// Cached candidate prices.
    candidates: Vec<Price>,
    /// Indices into the caller's bid slice for live (non-null) bids —
    /// hoisted here so the hot path allocates nothing per call.
    live: Vec<u32>,
    /// Candidate indices in ascending price order (the sweep order);
    /// rebuilt exactly when `candidates` is regenerated.
    order: Vec<u32>,
    /// The current slot's columnar bid book.
    book: BidBook,
    /// The previous slot's book — the baseline delta detection and the
    /// cached sums refer to.
    prev_book: BidBook,
    /// Per-candidate clipped-demand totals (indexed by stored candidate
    /// position, like `candidates`).
    totals: Vec<f64>,
    /// Per-candidate per-touched-PDU sums, candidate-major:
    /// `pdu_used[c * touched + s]`.
    pdu_used: Vec<f64>,
    /// Whether `totals`/`pdu_used` describe (`prev_book`, `candidates`).
    sums_valid: bool,
    /// Segment cursors for the sweep (one per live bid).
    cursors: Vec<u32>,
    /// Segment cursors over the previous book's changed bids (marking).
    old_cursors: Vec<u32>,
    /// Segment cursors over the current book's changed bids (marking).
    new_cursors: Vec<u32>,
    /// Positions of bids whose fingerprint chunk changed since the
    /// previous slot.
    changed: Vec<u32>,
    /// Per-candidate "this price row must be re-summed" marks.
    affected: Vec<bool>,
}

/// One linear-or-constant piece of a bid's demand curve, valid up to
/// `bound`. [`advance_cursor`] walks these left to right as the sweep's
/// query price rises, reproducing the corresponding `demand_at`
/// implementation bit for bit — including its comparison style:
/// `fuzzy` pieces end when `bound <= q + EPS` (the `partition_point`
/// predicate of [`crate::demand::FullBid`]) while exact pieces end when
/// `q > bound` with `EPS` pre-added into the bound (the `LinearBid`/
/// `StepBid` style). The two are *not* interchangeable.
#[derive(Debug, Clone, Copy)]
struct Segment {
    bound: f64,
    fuzzy: bool,
    kind: SegKind,
}

#[derive(Debug, Clone, Copy)]
enum SegKind {
    Const(f64),
    Interp { q0: f64, dq: f64, a: f64, b: f64 },
}

impl Segment {
    /// Every bid's chain ends with this unbounded zero-demand piece, so
    /// cursors saturate instead of running off the end.
    const TERMINAL: Segment = Segment {
        bound: f64::INFINITY,
        fuzzy: false,
        kind: SegKind::Const(0.0),
    };

    #[inline]
    fn passed(&self, q: f64) -> bool {
        if self.fuzzy {
            self.bound <= q + EPS
        } else {
            q > self.bound
        }
    }

    #[inline]
    fn eval(&self, q: f64) -> f64 {
        match self.kind {
            SegKind::Const(v) => v,
            SegKind::Interp { q0, dq, a, b } => a + (b - a) * ((q - q0) / dq),
        }
    }
}

/// Advances one bid's segment cursor to the piece covering `q` and
/// evaluates it. Queries must arrive in non-decreasing `q` order per
/// sweep, which is why each candidate costs O(1) amortized.
#[inline]
fn advance_cursor(segs: &[Segment], cur: &mut u32, q: f64) -> f64 {
    let mut i = *cur as usize;
    while segs[i].passed(q) {
        i += 1;
    }
    *cur = i as u32;
    segs[i].eval(q)
}

/// Decomposes `d` into its [`Segment`] chain (terminated), matching the
/// region boundaries and arithmetic of `d.demand_at` exactly.
fn push_segments(d: &DemandBid, out: &mut Vec<Segment>) {
    match d {
        DemandBid::Linear(b) => {
            let d_max = b.d_max().value();
            let d_min = b.d_min().value();
            let q0 = b.q_min().per_kw_hour_value();
            let q1 = b.q_max().per_kw_hour_value();
            out.push(Segment {
                bound: q0 + EPS,
                fuzzy: false,
                kind: SegKind::Const(d_max),
            });
            let kind = if q1 - q0 <= EPS {
                // Degenerate step at q0 == q1: demand D_max up to it.
                SegKind::Const(d_max)
            } else {
                SegKind::Interp {
                    q0,
                    dq: q1 - q0,
                    a: d_max,
                    b: d_min,
                }
            };
            out.push(Segment {
                bound: q1 + EPS,
                fuzzy: false,
                kind,
            });
            out.push(Segment::TERMINAL);
        }
        DemandBid::Step(b) => {
            out.push(Segment {
                bound: b.price_cap().per_kw_hour_value() + EPS,
                fuzzy: false,
                kind: SegKind::Const(b.demand().value()),
            });
            out.push(Segment::TERMINAL);
        }
        DemandBid::Full(b) => {
            let pts = b.points();
            out.push(Segment {
                bound: pts[0].0.per_kw_hour_value() + EPS,
                fuzzy: false,
                kind: SegKind::Const(pts[0].1.value()),
            });
            for w in pts.windows(2) {
                let (q0, d0) = (w[0].0.per_kw_hour_value(), w[0].1.value());
                let (q1, d1) = (w[1].0.per_kw_hour_value(), w[1].1.value());
                let span = q1 - q0;
                let kind = if span <= EPS {
                    SegKind::Const(d1)
                } else {
                    SegKind::Interp {
                        q0,
                        dq: span,
                        a: d0,
                        b: d1,
                    }
                };
                out.push(Segment {
                    bound: q1,
                    fuzzy: true,
                    kind,
                });
            }
            let last = pts[pts.len() - 1];
            out.push(Segment {
                bound: last.0.per_kw_hour_value() + EPS,
                fuzzy: false,
                kind: SegKind::Const(last.1.value()),
            });
            out.push(Segment::TERMINAL);
        }
    }
}

/// The columnar bid book: one slot's live bids decomposed into flat
/// parallel arrays (structure-of-arrays), so the price sweep touches
/// contiguous memory instead of chasing `RackBid` enum layouts.
///
/// PDUs are remapped to compact *slots* in first-appearance order
/// (`touched`/`slot_lookup`), so per-candidate PDU sums live in a dense
/// `candidates × touched` matrix however sparse the global PDU space.
/// `fp`/`fp_start` hold per-bid fingerprint chunks (rack, headroom, PDU
/// index, demand parameters — deliberately *not* the spot capacities,
/// which only feasibility reads) used for delta detection between
/// consecutive slots.
#[derive(Debug, Default)]
struct BidBook {
    /// Rack index of each live bid.
    rack: Vec<u32>,
    /// Global PDU index per bid (`u32::MAX` for an unknown rack).
    pdu: Vec<u32>,
    /// Compact accumulator slot per bid (index into `touched`).
    pdu_slot: Vec<u32>,
    /// Rack headroom (watts) per bid.
    headroom: Vec<f64>,
    /// First segment of each bid's chain in `segs`.
    seg_start: Vec<u32>,
    /// All bids' segment chains, concatenated.
    segs: Vec<Segment>,
    /// Per-bid fingerprint chunks, concatenated.
    fp: Vec<u64>,
    /// Chunk boundaries: bid `i` owns `fp[fp_start[i]..fp_start[i+1]]`.
    fp_start: Vec<u32>,
    /// Global indices of PDUs with at least one bid, in first-appearance
    /// order.
    touched: Vec<u32>,
    /// Current spot capacity (watts) of each touched PDU.
    touched_spot: Vec<f64>,
    /// Global PDU index → compact slot (`u32::MAX` = untouched).
    /// Persists across builds; reset via the previous `touched` list.
    slot_lookup: Vec<u32>,
    /// Highest bid price ceiling — determines the grid candidate list.
    ceiling: f64,
    /// Whether any live bid's rack has no known PDU (forces the legacy
    /// fallback: such markets are wholly infeasible).
    any_unknown_pdu: bool,
}

impl BidBook {
    fn len(&self) -> usize {
        self.rack.len()
    }

    /// Rebuilds the book for one slot's live bids. Reuses every buffer;
    /// `slot_lookup` is un-marked via the *old* `touched` list first so
    /// it never needs a full clear.
    fn build(&mut self, bids: &[RackBid], live: &[u32], constraints: &ConstraintSet) {
        for &p in &self.touched {
            self.slot_lookup[p as usize] = u32::MAX;
        }
        self.rack.clear();
        self.pdu.clear();
        self.pdu_slot.clear();
        self.headroom.clear();
        self.seg_start.clear();
        self.segs.clear();
        self.fp.clear();
        self.fp_start.clear();
        self.touched.clear();
        self.touched_spot.clear();
        self.ceiling = 0.0;
        self.any_unknown_pdu = false;
        self.fp_start.push(0);
        for &i in live {
            let b = &bids[i as usize];
            let rack = b.rack();
            let headroom = constraints.rack_headroom(rack).value();
            self.rack.push(rack.index() as u32);
            self.headroom.push(headroom);
            self.fp.push(rack.index() as u64);
            self.fp.push(headroom.to_bits());
            match constraints.pdu_of(rack) {
                Some(p) => {
                    let pi = p.index();
                    self.fp.push(pi as u64);
                    if pi >= self.slot_lookup.len() {
                        self.slot_lookup.resize(pi + 1, u32::MAX);
                    }
                    let mut slot = self.slot_lookup[pi];
                    if slot == u32::MAX {
                        slot = self.touched.len() as u32;
                        self.slot_lookup[pi] = slot;
                        self.touched.push(pi as u32);
                        self.touched_spot.push(constraints.pdu_spot(p).value());
                    }
                    self.pdu.push(pi as u32);
                    self.pdu_slot.push(slot);
                }
                None => {
                    self.fp.push(u64::MAX);
                    self.any_unknown_pdu = true;
                    self.pdu.push(u32::MAX);
                    self.pdu_slot.push(0);
                }
            }
            self.seg_start.push(self.segs.len() as u32);
            push_segments(b.demand(), &mut self.segs);
            self.ceiling = self
                .ceiling
                .max(b.demand().price_ceiling().per_kw_hour_value());
            fingerprint_demand(b.demand(), &mut self.fp);
            self.fp_start.push(self.fp.len() as u32);
        }
    }
}

impl Clone for MarketClearing {
    fn clone(&self) -> Self {
        // Scratch is per-instance cache, not state: clones start empty.
        MarketClearing::new(self.config)
    }
}

impl Default for MarketClearing {
    fn default() -> Self {
        MarketClearing::new(ClearingConfig::default())
    }
}

impl MarketClearing {
    /// Creates a clearing engine with the given configuration.
    #[must_use]
    pub fn new(config: ClearingConfig) -> Self {
        MarketClearing {
            config,
            scratch: std::array::from_fn(|_| Mutex::new(Scratch::default())),
            stats: CacheStats::default(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ClearingConfig {
        &self.config
    }

    /// A snapshot of this engine's sweep-mode counters: how many
    /// clearings were served from cache, patched incrementally, swept
    /// in full, or routed through the legacy scan.
    #[must_use]
    pub fn cache_stats(&self) -> ClearingCacheStats {
        ClearingCacheStats {
            full_sweeps: self.stats.full_sweeps.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            delta_sweeps: self.stats.delta_sweeps.load(Ordering::Relaxed),
            legacy_scans: self.stats.legacy_scans.load(Ordering::Relaxed),
            candidates_total: self.stats.candidates_total.load(Ordering::Relaxed),
            candidates_swept: self.stats.candidates_swept.load(Ordering::Relaxed),
        }
    }

    /// Clears the market for `slot`: finds the revenue-maximizing
    /// feasible uniform price and the per-rack grants it induces.
    ///
    /// Bids whose demand is identically zero are ignored. If no bid is
    /// present (or no positive-revenue feasible price exists) the
    /// returned outcome carries an empty allocation.
    ///
    /// Candidate prices are cached across calls: when the live-bid set
    /// (bid parameters, headrooms, spot capacities) is bit-identical to
    /// the market a scratch buffer last cleared, candidate generation
    /// is skipped and the cached prices are re-evaluated against the
    /// current constraints. The cache key is the *full* fingerprint of
    /// every input candidate generation reads — compared by equality,
    /// not by hash — so a hit provably regenerates the same candidate
    /// list and the outcome is byte-identical either way.
    ///
    /// On top of the candidate cache, per-candidate demand sums are
    /// cached too: when the live-bid set is unchanged since the scratch
    /// buffer's previous clearing, no demand function is re-evaluated
    /// at all (a *cache hit* — only feasibility is re-checked against
    /// the current capacities); when only a few bids changed under grid
    /// scanning, only the candidate rows those bids perturbed are
    /// re-summed (a *delta sweep*). Both are bit-identical to the full
    /// sweep by construction — see DESIGN.md §13 for the invariants.
    #[must_use]
    pub fn clear(
        &self,
        slot: Slot,
        bids: &[RackBid],
        constraints: &ConstraintSet,
    ) -> MarketOutcome {
        let _span = spotdc_telemetry::span!("clearing", slot = slot);
        // Grab the first free scratch buffer; fall back to a fresh
        // stack-local one when every slot is busy (or poisoned).
        let mut fallback = None;
        let mut guard = self.scratch.iter().find_map(|m| m.try_lock().ok());
        let scratch: &mut Scratch = match guard.as_deref_mut() {
            Some(s) => s,
            None => fallback.get_or_insert_with(Scratch::default),
        };
        scratch.live.clear();
        scratch.live.extend(
            bids.iter()
                .enumerate()
                .filter(|(_, b)| !b.demand().is_null())
                .map(|(i, _)| i as u32),
        );
        if scratch.live.is_empty() {
            let outcome = MarketOutcome {
                allocation: SpotAllocation::none(slot),
                revenue_rate: 0.0,
                candidates: 0,
            };
            if spotdc_telemetry::is_enabled() {
                self.record_outcome(slot, &outcome, constraints, None);
            }
            return outcome;
        }
        scratch.next_key.clear();
        self.fingerprint(bids, &scratch.live, constraints, &mut scratch.next_key);
        let mut regenerated = false;
        if scratch.candidates.is_empty() || scratch.next_key != scratch.key {
            regenerated = true;
            scratch.candidates.clear();
            match self.config.algorithm {
                ClearingAlgorithm::GridScan => {
                    self.grid_candidates(bids, &scratch.live, &mut scratch.candidates);
                }
                ClearingAlgorithm::KinkSearch => {
                    self.kink_candidates(bids, &scratch.live, constraints, &mut scratch.candidates);
                }
            }
            std::mem::swap(&mut scratch.key, &mut scratch.next_key);
            build_order(&scratch.candidates, &mut scratch.order);
        }
        let evaluated = scratch.candidates.len();

        // Heat zones and phase plans need the BTreeMap-ordered extra
        // checks of `feasible_total`; keep those markets on the legacy
        // per-candidate scan (their accumulation order is part of the
        // byte-identity contract).
        if !constraints.zones().is_empty() || constraints.phases().is_some() {
            scratch.sums_valid = false;
            let mut best: Option<(Price, f64)> = None;
            for &q in &scratch.candidates {
                let demands = scratch.live.iter().map(|&i| {
                    let b = &bids[i as usize];
                    (b.rack(), b.demand_at(q))
                });
                let Some(total) = constraints.feasible_total(demands) else {
                    continue;
                };
                let rate = q.per_kw_hour_value() * total.kilowatts();
                match best {
                    Some((_, best_rate)) if rate <= best_rate + 1e-12 => {}
                    _ => best = Some((q, rate)),
                }
            }
            return self.finish(
                slot,
                bids,
                &scratch.live,
                constraints,
                best,
                evaluated,
                "legacy",
                evaluated,
            );
        }

        std::mem::swap(&mut scratch.book, &mut scratch.prev_book);
        scratch.book.build(bids, &scratch.live, constraints);
        if scratch.book.any_unknown_pdu {
            // `feasible_total` rejects every candidate when any live
            // bid's rack has no PDU, so the market clears empty.
            scratch.sums_valid = false;
            return self.finish(
                slot,
                bids,
                &scratch.live,
                constraints,
                None,
                evaluated,
                "legacy",
                evaluated,
            );
        }
        let nc = evaluated;
        let ns = scratch.book.touched.len();
        let sums_usable =
            scratch.sums_valid && scratch.totals.len() == nc && scratch.pdu_used.len() == nc * ns;
        let same_bids = sums_usable
            && scratch.book.fp == scratch.prev_book.fp
            && scratch.book.fp_start == scratch.prev_book.fp_start
            && scratch.book.touched == scratch.prev_book.touched;
        let is_grid = self.config.algorithm == ClearingAlgorithm::GridScan;
        // A grid candidate list is a pure function of the step and the
        // bid ceiling, so equal bids imply an identical (even if just
        // regenerated) list and the cached sums still line up. Kink
        // candidates also read the capacities, so a kink hit requires
        // the whole fingerprint to have matched (no regeneration).
        let (mode, swept): (&'static str, usize) = if same_bids && (is_grid || !regenerated) {
            ("hit", 0)
        } else if sums_usable
            && is_grid
            && delta_changed(&scratch.prev_book, &scratch.book, &mut scratch.changed)
        {
            let marked = mark_affected(
                &scratch.prev_book,
                &scratch.book,
                &scratch.changed,
                &scratch.candidates,
                &scratch.order,
                &mut scratch.old_cursors,
                &mut scratch.new_cursors,
                &mut scratch.affected,
            );
            for (c, &aff) in scratch.affected.iter().enumerate() {
                if aff {
                    scratch.totals[c] = 0.0;
                    for v in &mut scratch.pdu_used[c * ns..(c + 1) * ns] {
                        *v = 0.0;
                    }
                }
            }
            sweep(
                &scratch.book,
                &scratch.candidates,
                &scratch.order,
                Some(&scratch.affected),
                &mut scratch.cursors,
                &mut scratch.totals,
                &mut scratch.pdu_used,
            );
            ("delta", marked)
        } else {
            scratch.totals.clear();
            scratch.totals.resize(nc, 0.0);
            scratch.pdu_used.clear();
            scratch.pdu_used.resize(nc * ns, 0.0);
            sweep(
                &scratch.book,
                &scratch.candidates,
                &scratch.order,
                None,
                &mut scratch.cursors,
                &mut scratch.totals,
                &mut scratch.pdu_used,
            );
            scratch.sums_valid = true;
            ("full", nc)
        };
        let best = select_best(
            &scratch.candidates,
            &scratch.totals,
            &scratch.pdu_used,
            &scratch.book.touched_spot,
            constraints.ups_spot().value(),
        );
        self.finish(
            slot,
            bids,
            &scratch.live,
            constraints,
            best,
            evaluated,
            mode,
            swept,
        )
    }

    /// Builds the outcome for the chosen price, updates the sweep-mode
    /// counters, and records telemetry. Grants re-evaluate each live
    /// bid at the winning price exactly like the legacy scan did.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        slot: Slot,
        bids: &[RackBid],
        live: &[u32],
        constraints: &ConstraintSet,
        best: Option<(Price, f64)>,
        evaluated: usize,
        mode: &'static str,
        swept: usize,
    ) -> MarketOutcome {
        let outcome = match best {
            Some((price, rate)) if rate > 0.0 => {
                let grants = live
                    .iter()
                    .map(|&i| {
                        let b = &bids[i as usize];
                        let d = b.demand_at(price).min(constraints.rack_headroom(b.rack()));
                        (b.rack(), d)
                    })
                    .collect();
                MarketOutcome {
                    allocation: SpotAllocation::new(slot, price, grants),
                    revenue_rate: rate,
                    candidates: evaluated,
                }
            }
            _ => MarketOutcome {
                allocation: SpotAllocation::none(slot),
                revenue_rate: 0.0,
                candidates: evaluated,
            },
        };
        let counter = match mode {
            "hit" => &self.stats.cache_hits,
            "delta" => &self.stats.delta_sweeps,
            "full" => &self.stats.full_sweeps,
            _ => &self.stats.legacy_scans,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.stats
            .candidates_total
            .fetch_add(evaluated as u64, Ordering::Relaxed);
        self.stats
            .candidates_swept
            .fetch_add(swept as u64, Ordering::Relaxed);
        if spotdc_telemetry::is_enabled() {
            self.record_outcome(slot, &outcome, constraints, Some((mode, evaluated, swept)));
        }
        outcome
    }

    /// Writes the full fingerprint of everything candidate generation
    /// reads into `out`: algorithm, grid step, UPS spot, and per live
    /// bid its rack, headroom, PDU (with that PDU's spot capacity), and
    /// every demand-curve parameter, all as exact `f64` bit patterns.
    /// Heat zones and phase bounds are deliberately absent — candidate
    /// generation never reads them (only per-candidate feasibility
    /// does, and that is re-evaluated on every call).
    fn fingerprint(
        &self,
        bids: &[RackBid],
        live: &[u32],
        constraints: &ConstraintSet,
        out: &mut Vec<u64>,
    ) {
        out.push(match self.config.algorithm {
            ClearingAlgorithm::GridScan => 0,
            ClearingAlgorithm::KinkSearch => 1,
        });
        out.push(self.config.price_step.per_kw_hour_value().to_bits());
        out.push(constraints.ups_spot().value().to_bits());
        out.push(live.len() as u64);
        for &i in live {
            let b = &bids[i as usize];
            out.push(b.rack().index() as u64);
            out.push(constraints.rack_headroom(b.rack()).value().to_bits());
            match constraints.pdu_of(b.rack()) {
                Some(p) => {
                    out.push(p.index() as u64);
                    out.push(constraints.pdu_spot(p).value().to_bits());
                }
                None => {
                    out.push(u64::MAX);
                    out.push(0);
                }
            }
            fingerprint_demand(b.demand(), out);
        }
    }

    /// Telemetry for one clearing: counters, the `SlotCleared` and
    /// `ClearingCache` events, and `ConstraintBound` events for every
    /// capacity the winning allocation exhausted. Only called when
    /// telemetry is enabled. `cache` carries the sweep mode plus the
    /// candidate counts considered and actually re-summed (`None` for
    /// the empty-market early exit, which sweeps nothing).
    fn record_outcome(
        &self,
        slot: Slot,
        outcome: &MarketOutcome,
        constraints: &ConstraintSet,
        cache: Option<(&'static str, usize, usize)>,
    ) {
        use spotdc_telemetry::Event;
        use spotdc_units::MonotonicNanos;

        let registry = spotdc_telemetry::registry();
        registry.inc_counter("spotdc_slots_cleared_total", 1);
        registry.inc_counter(
            "spotdc_clearing_candidates_total",
            outcome.candidates as u64,
        );
        spotdc_telemetry::emit(Event::SlotCleared {
            slot,
            at: MonotonicNanos::now(),
            price_per_kw_hour: outcome.price().per_kw_hour_value(),
            sold_watts: outcome.sold().value(),
            revenue_rate_per_hour: outcome.revenue_rate(),
            candidates_evaluated: outcome.candidates as u64,
        });
        if let Some((mode, evaluated, swept)) = cache {
            registry.inc_counter(
                match mode {
                    "hit" => "spotdc_clearing_cache_hits_total",
                    "delta" => "spotdc_clearing_cache_delta_total",
                    _ => "spotdc_clearing_cache_misses_total",
                },
                1,
            );
            registry.inc_counter("spotdc_clearing_candidates_swept_total", swept as u64);
            spotdc_telemetry::emit(Event::ClearingCache {
                slot,
                at: MonotonicNanos::now(),
                mode: mode.to_owned(),
                candidates_total: evaluated as u64,
                candidates_swept: swept as u64,
            });
        }
        if outcome.allocation.is_empty() {
            return;
        }
        // A constraint is "bound" when the winning grants leave less
        // than a watt-scale epsilon of its spot capacity unused.
        let bound = |used: Watts, limit: Watts| -> bool {
            limit > Watts::ZERO && used.value() >= limit.value() - (1e-6 * limit.value() + 1e-9)
        };
        let mut per_pdu: std::collections::BTreeMap<usize, Watts> =
            std::collections::BTreeMap::new();
        let mut total = Watts::ZERO;
        for (rack, grant) in outcome.allocation.iter() {
            total += grant;
            if let Some(p) = constraints.pdu_of(rack) {
                *per_pdu.entry(p.index()).or_insert(Watts::ZERO) += grant;
            }
        }
        for (p, used) in per_pdu {
            let limit = constraints.pdu_spot(spotdc_units::PduId::new(p));
            if bound(used, limit) {
                spotdc_telemetry::emit(Event::ConstraintBound {
                    slot,
                    at: MonotonicNanos::now(),
                    constraint: format!("pdu-{p}"),
                    limit_watts: limit.value(),
                });
            }
        }
        if bound(total, constraints.ups_spot()) {
            spotdc_telemetry::emit(Event::ConstraintBound {
                slot,
                at: MonotonicNanos::now(),
                constraint: "ups".to_owned(),
                limit_watts: constraints.ups_spot().value(),
            });
        }
    }

    /// Grid candidates: every multiple of the step from 0 through the
    /// highest bid ceiling (inclusive, with one extra step beyond so a
    /// feasible zero-demand price always exists). Appends into `out`
    /// so the caller's buffer is recycled between clearings.
    fn grid_candidates(&self, bids: &[RackBid], live: &[u32], out: &mut Vec<Price>) {
        let ceiling = live
            .iter()
            .map(|&i| bids[i as usize].demand().price_ceiling())
            .fold(Price::ZERO, Price::max);
        let step = self.config.price_step.per_kw_hour_value().max(1e-9);
        let n = (ceiling.per_kw_hour_value() / step).ceil() as usize + 1;
        out.extend((0..=n).map(|i| Price::per_kw_hour(i as f64 * step)));
    }

    /// Kink candidates: all bids' kink prices (and headroom-clip
    /// crossings), each also probed "just above" (for discontinuities),
    /// plus the quadratic revenue vertex interior to each kink
    /// interval. Appends into `out` like [`Self::grid_candidates`].
    fn kink_candidates(
        &self,
        bids: &[RackBid],
        live: &[u32],
        constraints: &ConstraintSet,
        out: &mut Vec<Price>,
    ) {
        let mut kinks: Vec<f64> = vec![0.0];
        for &i in live {
            let b = &bids[i as usize];
            for k in b.demand().kink_prices() {
                kinks.push(k.per_kw_hour_value());
            }
            for k in clip_crossings(b.demand(), constraints.rack_headroom(b.rack())) {
                kinks.push(k.per_kw_hour_value());
            }
        }
        kinks.retain(|k| k.is_finite() && *k >= 0.0);
        kinks.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        kinks.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        // Clipped demand of one bid at price q.
        let clipped = |b: &RackBid, q: f64| -> f64 {
            b.demand_at(Price::per_kw_hour(q))
                .min(constraints.rack_headroom(b.rack()))
                .clamp_non_negative()
                .value()
        };
        let aggregate =
            |q: f64| -> f64 { live.iter().map(|&i| clipped(&bids[i as usize], q)).sum() };

        // The constraint groups whose crossing prices matter: every PDU
        // with at least one bid, plus the UPS over all bids. Members
        // are positions into `live`, preserving live-bid order.
        let mut groups: Vec<(Vec<usize>, f64)> = Vec::new();
        {
            use std::collections::BTreeMap;
            let mut by_pdu: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (j, &i) in live.iter().enumerate() {
                if let Some(p) = constraints.pdu_of(bids[i as usize].rack()) {
                    by_pdu.entry(p.index()).or_default().push(j);
                }
            }
            for (p, members) in by_pdu {
                let cap = constraints.pdu_spot(spotdc_units::PduId::new(p)).value();
                groups.push((members, cap));
            }
            groups.push(((0..live.len()).collect(), constraints.ups_spot().value()));
        }

        out.reserve(kinks.len() * 4);
        for (i, &k) in kinks.iter().enumerate() {
            out.push(Price::per_kw_hour(k));
            out.push(Price::per_kw_hour(k + JUST_ABOVE));
            if let Some(&next) = kinks.get(i + 1) {
                // Demand is linear on (k, next): fit D(q) = α − βq from
                // two interior probes.
                let q1 = k + (next - k) * 0.25;
                let q2 = k + (next - k) * 0.75;
                if (q2 - q1).abs() <= 1e-15 {
                    continue;
                }
                // Revenue vertex of the aggregate demand.
                let d1 = aggregate(q1);
                let d2 = aggregate(q2);
                let beta = (d1 - d2) / (q2 - q1);
                if beta > 1e-12 {
                    let alpha = d1 + beta * q1;
                    let vertex = alpha / (2.0 * beta);
                    if vertex > k && vertex < next {
                        out.push(Price::per_kw_hour(vertex));
                    }
                }
                // Feasibility-threshold prices: where each constraint
                // group's demand crosses its capacity, the feasible
                // region begins — the revenue optimum often sits there.
                for (members, cap) in &groups {
                    let g1: f64 = members
                        .iter()
                        .map(|&m| clipped(&bids[live[m] as usize], q1))
                        .sum();
                    let g2: f64 = members
                        .iter()
                        .map(|&m| clipped(&bids[live[m] as usize], q2))
                        .sum();
                    let gb = (g1 - g2) / (q2 - q1);
                    if gb > 1e-12 {
                        let ga = g1 + gb * q1;
                        let crossing = (ga - cap) / gb;
                        if crossing > k && crossing < next {
                            out.push(Price::per_kw_hour(crossing));
                            out.push(Price::per_kw_hour(crossing + JUST_ABOVE));
                        }
                    }
                }
            }
        }
    }
}

impl MarketClearing {
    /// Per-PDU pricing — the localized-price ablation of DESIGN.md.
    ///
    /// Instead of one uniform price, each PDU's bids are cleared
    /// independently against that PDU's spot capacity plus a
    /// proportional share of the UPS spot capacity. Localized prices
    /// can extract more revenue when PDUs are unevenly loaded, at the
    /// cost of the transparency/simplicity the paper argues for (and
    /// cross-PDU heat zones are only enforced within each sub-market).
    ///
    /// Returns one outcome per PDU that received bids, in PDU order.
    #[must_use]
    pub fn clear_per_pdu(
        &self,
        slot: Slot,
        bids: &[RackBid],
        constraints: &ConstraintSet,
    ) -> Vec<MarketOutcome> {
        let _span = spotdc_telemetry::span!("clear_per_pdu", slot = slot);
        self.per_pdu_submarkets(bids, constraints)
            .iter()
            .map(|(group, local)| self.clear(slot, group, local))
            .collect()
    }

    /// Decomposes a per-PDU pricing round into its independent
    /// sub-markets: one `(bids, constraints)` pair per PDU that
    /// received bids, in PDU order, each with the PDU's proportional
    /// share of the UPS spot capacity. Sub-markets share no mutable
    /// state, so callers may clear them in any order — or concurrently
    /// — and merge outcomes back in this order to reproduce
    /// [`Self::clear_per_pdu`] exactly.
    #[must_use]
    pub fn per_pdu_submarkets(
        &self,
        bids: &[RackBid],
        constraints: &ConstraintSet,
    ) -> Vec<(Vec<RackBid>, ConstraintSet)> {
        self.per_pdu_submarket_shares(bids, constraints)
            .into_iter()
            .map(|(group, share)| (group, constraints.clone().with_ups_spot(share)))
            .collect()
    }

    /// Like [`Self::per_pdu_submarkets`] but returns each sub-market's
    /// UPS spot *share* instead of materializing a full constraint-set
    /// clone per group. The share is the exact value
    /// `per_pdu_submarkets` passes to [`ConstraintSet::with_ups_spot`],
    /// so `constraints.clone().with_ups_spot(share)` — or a retained
    /// set updated via [`ConstraintSet::set_ups_spot`] — reproduces the
    /// sub-market constraints bit for bit. The distributed controller
    /// uses this to ship one share per task instead of ~120KB of cloned
    /// statics.
    #[must_use]
    pub fn per_pdu_submarket_shares(
        &self,
        bids: &[RackBid],
        constraints: &ConstraintSet,
    ) -> Vec<(Vec<RackBid>, Watts)> {
        use std::collections::BTreeMap;
        let mut by_pdu: BTreeMap<usize, Vec<RackBid>> = BTreeMap::new();
        for b in bids {
            if let Some(p) = constraints.pdu_of(b.rack()) {
                by_pdu.entry(p.index()).or_default().push(b.clone());
            }
        }
        let spot_total: f64 = by_pdu
            .keys()
            .map(|&p| constraints.pdu_spot(spotdc_units::PduId::new(p)).value())
            .sum();
        by_pdu
            .into_iter()
            .map(|(p, group)| {
                let pdu_spot = constraints.pdu_spot(spotdc_units::PduId::new(p));
                let share = if spot_total > 0.0 {
                    constraints.ups_spot() * (pdu_spot.value() / spot_total)
                } else {
                    Watts::ZERO
                };
                (group, share.min(constraints.ups_spot()))
            })
            .collect()
    }
}

/// Rebuilds the ascending-price visiting order for a candidate list.
/// Grid lists are already ascending (the common case, detected with one
/// linear scan); kink lists interleave vertices and crossings and need
/// the sort. Ties may land in any order — equal prices evaluate to
/// identical sums, and results are stored by candidate position, so the
/// selection order (and thus the tie rule) is unaffected.
fn build_order(candidates: &[Price], order: &mut Vec<u32>) {
    order.clear();
    order.extend(0..candidates.len() as u32);
    let sorted = candidates
        .windows(2)
        .all(|w| w[0].per_kw_hour_value() <= w[1].per_kw_hour_value());
    if !sorted {
        order.sort_unstable_by(|&a, &b| {
            candidates[a as usize]
                .per_kw_hour_value()
                .partial_cmp(&candidates[b as usize].per_kw_hour_value())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
}

/// The bucketed price sweep: visits candidates in ascending price
/// order, advancing every bid's segment cursor monotonically, and
/// accumulates each candidate's clipped-demand total and per-PDU sums
/// in bid order — the exact addend sequence `feasible_total` would
/// produce, so the resulting floats are bit-identical to the legacy
/// scan's. With `only`, rows not marked are skipped (their cached sums
/// are already correct); skipping is safe because cursors advance
/// lazily to whatever price comes next.
fn sweep(
    book: &BidBook,
    candidates: &[Price],
    order: &[u32],
    only: Option<&[bool]>,
    cursors: &mut Vec<u32>,
    totals: &mut [f64],
    pdu_used: &mut [f64],
) {
    let ns = book.touched.len();
    cursors.clear();
    cursors.extend_from_slice(&book.seg_start);
    for &ci in order {
        let c = ci as usize;
        if only.is_some_and(|m| !m[c]) {
            continue;
        }
        let q = candidates[c].per_kw_hour_value();
        let row = &mut pdu_used[c * ns..(c + 1) * ns];
        let mut total = 0.0;
        for ((cur, &h), &ps) in cursors.iter_mut().zip(&book.headroom).zip(&book.pdu_slot) {
            let d = advance_cursor(&book.segs, cur, q);
            // `min` then clamp — f64::min and `< 0.0`, matching
            // `Watts::min`/`Watts::clamp_non_negative` bit for bit.
            let mut clip = d.min(h);
            if clip < 0.0 {
                clip = 0.0;
            }
            total += clip;
            row[ps as usize] += clip;
        }
        totals[c] = total;
    }
}

/// Picks the revenue-maximizing feasible candidate from the swept sums,
/// visiting candidates in *stored* order with the legacy tie rule
/// (`rate <= best + 1e-12` keeps the incumbent). Untouched PDUs carry
/// exactly 0.0 demand and non-negative capacity, so checking only the
/// touched ones decides feasibility identically to the all-PDU loop.
fn select_best(
    candidates: &[Price],
    totals: &[f64],
    pdu_used: &[f64],
    touched_spot: &[f64],
    ups_spot: f64,
) -> Option<(Price, f64)> {
    let ns = touched_spot.len();
    let mut best: Option<(Price, f64)> = None;
    'cand: for (c, &q) in candidates.iter().enumerate() {
        for (&used, &cap) in pdu_used[c * ns..(c + 1) * ns].iter().zip(touched_spot) {
            if used > cap + TOLERANCE {
                continue 'cand;
            }
        }
        let total = totals[c];
        if total > ups_spot + TOLERANCE {
            continue;
        }
        let rate = q.per_kw_hour_value() * (total / 1_000.0);
        match best {
            Some((_, best_rate)) if rate <= best_rate + 1e-12 => {}
            _ => best = Some((q, rate)),
        }
    }
    best
}

/// Whether `new` differs from `old` by a small, delta-sweepable set of
/// bids. Fills `changed` with the positions whose fingerprint chunks
/// differ and returns `true` only when a delta re-clear is sound:
/// same bid count (positions align), same grid ceiling (the regenerated
/// candidate list is bit-identical to the one the cached sums were
/// built for), same touched-PDU list (accumulator slots align), every
/// changed bid still on its old PDU, and churn at or below the
/// threshold. Capacities may differ freely — they are not part of the
/// sums, only of selection.
fn delta_changed(old: &BidBook, new: &BidBook, changed: &mut Vec<u32>) -> bool {
    changed.clear();
    let n = new.len();
    if old.len() != n
        || old.ceiling.to_bits() != new.ceiling.to_bits()
        || old.touched != new.touched
    {
        return false;
    }
    let limit = (n / DELTA_CHURN_DIVISOR).max(1);
    for i in 0..n {
        let old_chunk = &old.fp[old.fp_start[i] as usize..old.fp_start[i + 1] as usize];
        let new_chunk = &new.fp[new.fp_start[i] as usize..new.fp_start[i + 1] as usize];
        if old_chunk == new_chunk {
            continue;
        }
        if new.pdu[i] != old.pdu[i] || changed.len() == limit {
            changed.clear();
            return false;
        }
        changed.push(i as u32);
    }
    !changed.is_empty()
}

/// Marks the candidate rows whose cached sums the changed bids
/// perturbed: a row is affected iff any changed bid's clipped demand
/// at that price differs *in bits* between the old and new book.
/// Unaffected rows are sums of bit-identical addend sequences and stay
/// valid as-is. Returns the number of rows marked.
#[allow(clippy::too_many_arguments)]
fn mark_affected(
    old: &BidBook,
    new: &BidBook,
    changed: &[u32],
    candidates: &[Price],
    order: &[u32],
    old_cursors: &mut Vec<u32>,
    new_cursors: &mut Vec<u32>,
    affected: &mut Vec<bool>,
) -> usize {
    old_cursors.clear();
    new_cursors.clear();
    for &p in changed {
        old_cursors.push(old.seg_start[p as usize]);
        new_cursors.push(new.seg_start[p as usize]);
    }
    affected.clear();
    affected.resize(candidates.len(), false);
    let mut marked = 0;
    for &ci in order {
        let c = ci as usize;
        let q = candidates[c].per_kw_hour_value();
        for (k, &p) in changed.iter().enumerate() {
            let p = p as usize;
            let od = advance_cursor(&old.segs, &mut old_cursors[k], q);
            let nd = advance_cursor(&new.segs, &mut new_cursors[k], q);
            let mut old_clip = od.min(old.headroom[p]);
            if old_clip < 0.0 {
                old_clip = 0.0;
            }
            let mut new_clip = nd.min(new.headroom[p]);
            if new_clip < 0.0 {
                new_clip = 0.0;
            }
            if old_clip.to_bits() != new_clip.to_bits() {
                affected[c] = true;
            }
        }
        if affected[c] {
            marked += 1;
        }
    }
    marked
}

/// Appends the exact parameters of one demand curve to a fingerprint:
/// a variant tag, then every defining value as an `f64` bit pattern
/// (length-prefixed for [`crate::demand::FullBid`]'s variable point list, so distinct
/// curves can never encode to the same sequence).
fn fingerprint_demand(d: &DemandBid, out: &mut Vec<u64>) {
    match d {
        DemandBid::Linear(b) => {
            out.push(1);
            out.push(b.d_max().value().to_bits());
            out.push(b.q_min().per_kw_hour_value().to_bits());
            out.push(b.d_min().value().to_bits());
            out.push(b.q_max().per_kw_hour_value().to_bits());
        }
        DemandBid::Step(b) => {
            out.push(2);
            out.push(b.demand().value().to_bits());
            out.push(b.price_cap().per_kw_hour_value().to_bits());
        }
        DemandBid::Full(b) => {
            out.push(3);
            out.push(b.points().len() as u64);
            for (q, w) in b.points() {
                out.push(q.per_kw_hour_value().to_bits());
                out.push(w.value().to_bits());
            }
        }
    }
}

/// Prices at which `bid`'s demand crosses the rack headroom `h` (the
/// clip `min(D(q), h)` introduces kinks there).
fn clip_crossings(bid: &DemandBid, headroom: Watts) -> Vec<Price> {
    let h = headroom.value();
    let mut out = Vec::new();
    match bid {
        DemandBid::Linear(b) => {
            let (d0, d1) = (b.d_max().value(), b.d_min().value());
            let (q0, q1) = (b.q_min().per_kw_hour_value(), b.q_max().per_kw_hour_value());
            if d0 > h && h > d1 && q1 > q0 && (d0 - d1) > 1e-15 {
                let q = q0 + (q1 - q0) * (d0 - h) / (d0 - d1);
                out.push(Price::per_kw_hour(q));
            }
        }
        DemandBid::Step(_) => {}
        DemandBid::Full(b) => {
            for w in b.points().windows(2) {
                let (q0, d0) = (w[0].0.per_kw_hour_value(), w[0].1.value());
                let (q1, d1) = (w[1].0.per_kw_hour_value(), w[1].1.value());
                if d0 > h && h > d1 && (d0 - d1) > 1e-15 && q1 > q0 {
                    let q = q0 + (q1 - q0) * (d0 - h) / (d0 - d1);
                    out.push(Price::per_kw_hour(q));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{FullBid, LinearBid, StepBid};
    use spotdc_power::topology::TopologyBuilder;
    use spotdc_units::{RackId, TenantId};

    /// One PDU with `pdu_spot` watts of spot, two racks with 60 W
    /// headroom each, generous UPS.
    fn constraints(pdu_spot: f64) -> ConstraintSet {
        let topo = TopologyBuilder::new(Watts::new(1000.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(60.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(60.0))
            .build()
            .unwrap();
        ConstraintSet::new(&topo, vec![Watts::new(pdu_spot)], Watts::new(pdu_spot))
    }

    fn linear(rack: usize, d_max: f64, q_min: f64, d_min: f64, q_max: f64) -> RackBid {
        RackBid::new(
            RackId::new(rack),
            LinearBid::new(
                Watts::new(d_max),
                Price::per_kw_hour(q_min),
                Watts::new(d_min),
                Price::per_kw_hour(q_max),
            )
            .unwrap()
            .into(),
        )
    }

    fn clear_with(algo: ClearingAlgorithm, bids: &[RackBid], cs: &ConstraintSet) -> MarketOutcome {
        let config = match algo {
            ClearingAlgorithm::GridScan => ClearingConfig::grid(Price::cents_per_kw_hour(0.01)),
            ClearingAlgorithm::KinkSearch => ClearingConfig::kink_search(),
        };
        MarketClearing::new(config).clear(Slot::ZERO, bids, cs)
    }

    #[test]
    fn empty_market_clears_empty() {
        let cs = constraints(100.0);
        let out = MarketClearing::default().clear(Slot::ZERO, &[], &cs);
        assert!(out.allocation().is_empty());
        assert_eq!(out.revenue_rate(), 0.0);
    }

    #[test]
    fn single_step_bid_clears_at_its_cap() {
        let cs = constraints(100.0);
        let bids = vec![RackBid::new(
            RackId::new(0),
            StepBid::new(Watts::new(40.0), Price::per_kw_hour(0.25))
                .unwrap()
                .into(),
        )];
        for algo in [ClearingAlgorithm::GridScan, ClearingAlgorithm::KinkSearch] {
            let out = clear_with(algo, &bids, &cs);
            assert!(
                (out.price().per_kw_hour_value() - 0.25).abs() < 1e-6,
                "{algo:?} price {}",
                out.price()
            );
            assert_eq!(out.sold(), Watts::new(40.0));
        }
    }

    #[test]
    fn linear_bid_clears_at_revenue_vertex_or_corner() {
        // A single linear bid D(q) = 100 − 250q on (0.1, 0.3] wide open
        // capacity: revenue q(125 - 250q)... compute the truth directly.
        let cs = constraints(1000.0);
        let bids = vec![linear(0, 60.0, 0.0, 0.0, 0.3)];
        // D(q) = 60(1 − q/0.3) = 60 − 200q; R = 60q − 200q²; vertex at
        // q* = 0.15, but rack headroom also 60 so no clipping. R(0.15)
        // = 60*.15 − 200*.0225 = 9 − 4.5 = 4.5 W·$/kW/h = 0.0045 $/h.
        let out = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
        assert!(
            (out.price().per_kw_hour_value() - 0.15).abs() < 1e-6,
            "price {}",
            out.price()
        );
        assert!((out.sold().value() - 30.0).abs() < 1e-6);
        // Grid scan with a fine step finds (nearly) the same optimum.
        let grid = clear_with(ClearingAlgorithm::GridScan, &bids, &cs);
        assert!(grid.revenue_rate() <= out.revenue_rate() + 1e-12);
        assert!(grid.revenue_rate() > out.revenue_rate() * 0.999);
    }

    #[test]
    fn tight_capacity_forces_price_up() {
        // Two 40 W step bids but only 50 W of PDU spot: serving both is
        // infeasible at any price ≤ 0.2 (both demand), so the market
        // must price out the cheap bidder.
        let cs = constraints(50.0);
        let bids = vec![
            RackBid::new(
                RackId::new(0),
                StepBid::new(Watts::new(40.0), Price::per_kw_hour(0.2))
                    .unwrap()
                    .into(),
            ),
            RackBid::new(
                RackId::new(1),
                StepBid::new(Watts::new(40.0), Price::per_kw_hour(0.5))
                    .unwrap()
                    .into(),
            ),
        ];
        for algo in [ClearingAlgorithm::GridScan, ClearingAlgorithm::KinkSearch] {
            let out = clear_with(algo, &bids, &cs);
            assert!(out.price() > Price::per_kw_hour(0.2), "{algo:?}");
            assert_eq!(out.sold(), Watts::new(40.0));
            assert_eq!(out.allocation().grant(RackId::new(0)), Watts::ZERO);
            assert_eq!(out.allocation().grant(RackId::new(1)), Watts::new(40.0));
        }
    }

    #[test]
    fn elastic_bids_are_partially_served_under_scarcity() {
        // LinearBid's whole point: under scarcity the price rises along
        // the sloped segment and demand shrinks to fit, rather than the
        // all-or-nothing StepBid outcome.
        let cs = constraints(50.0);
        let bids = vec![
            linear(0, 40.0, 0.05, 10.0, 0.4),
            linear(1, 40.0, 0.05, 10.0, 0.4),
        ];
        let out = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
        let g0 = out.allocation().grant(RackId::new(0));
        let g1 = out.allocation().grant(RackId::new(1));
        assert!(g0 > Watts::ZERO && g1 > Watts::ZERO, "both served");
        assert!(g0 + g1 <= Watts::new(50.0 + 1e-6), "fits capacity");
        assert!(g0 < Watts::new(40.0), "partially served");
    }

    #[test]
    fn more_spot_capacity_never_raises_the_price() {
        let bids = vec![
            linear(0, 50.0, 0.05, 10.0, 0.4),
            linear(1, 50.0, 0.10, 20.0, 0.5),
        ];
        let mut last_price = f64::INFINITY;
        for spot in [30.0, 60.0, 90.0, 120.0] {
            let cs = constraints(spot);
            let out = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
            let p = out.price().per_kw_hour_value();
            assert!(p <= last_price + 1e-9, "price rose with more capacity");
            last_price = p;
        }
    }

    #[test]
    fn allocation_always_feasible() {
        for spot in [10.0, 35.0, 80.0, 200.0] {
            let cs = constraints(spot);
            let bids = vec![
                linear(0, 55.0, 0.02, 5.0, 0.35),
                linear(1, 70.0, 0.05, 15.0, 0.45), // d_max above 60 W headroom
            ];
            for algo in [ClearingAlgorithm::GridScan, ClearingAlgorithm::KinkSearch] {
                let out = clear_with(algo, &bids, &cs);
                assert!(
                    cs.is_feasible(out.allocation().grants()),
                    "{algo:?} produced infeasible allocation at spot {spot}"
                );
            }
        }
    }

    #[test]
    fn kink_search_at_least_matches_grid_scan() {
        let cases: Vec<Vec<RackBid>> = vec![
            vec![linear(0, 60.0, 0.0, 0.0, 0.3)],
            vec![
                linear(0, 45.0, 0.1, 20.0, 0.2),
                linear(1, 30.0, 0.15, 10.0, 0.5),
            ],
            vec![
                RackBid::new(
                    RackId::new(0),
                    FullBid::new(vec![
                        (Price::ZERO, Watts::new(55.0)),
                        (Price::per_kw_hour(0.2), Watts::new(25.0)),
                        (Price::per_kw_hour(0.6), Watts::ZERO),
                    ])
                    .unwrap()
                    .into(),
                ),
                linear(1, 50.0, 0.05, 0.0, 0.4),
            ],
        ];
        for bids in cases {
            for spot in [20.0, 45.0, 100.0] {
                let cs = constraints(spot);
                let grid = clear_with(ClearingAlgorithm::GridScan, &bids, &cs);
                let kink = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
                assert!(
                    kink.revenue_rate() >= grid.revenue_rate() - 1e-9,
                    "kink search lost: {} < {}",
                    kink.revenue_rate(),
                    grid.revenue_rate()
                );
            }
        }
    }

    #[test]
    fn kink_search_evaluates_far_fewer_candidates() {
        let cs = constraints(100.0);
        let bids = vec![
            linear(0, 50.0, 0.1, 10.0, 0.4),
            linear(1, 40.0, 0.2, 5.0, 0.6),
        ];
        let grid = clear_with(ClearingAlgorithm::GridScan, &bids, &cs);
        let kink = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
        assert!(kink.candidates_evaluated() < grid.candidates_evaluated() / 10);
    }

    #[test]
    fn null_bids_are_ignored() {
        let cs = constraints(100.0);
        let bids = vec![RackBid::new(
            RackId::new(0),
            StepBid::new(Watts::ZERO, Price::per_kw_hour(0.2))
                .unwrap()
                .into(),
        )];
        let out = MarketClearing::default().clear(Slot::ZERO, &bids, &cs);
        assert!(out.allocation().is_empty());
        assert_eq!(out.candidates_evaluated(), 0);
    }

    #[test]
    fn zero_spot_capacity_sells_nothing() {
        let cs = constraints(0.0);
        let bids = vec![linear(0, 50.0, 0.1, 10.0, 0.4)];
        for algo in [ClearingAlgorithm::GridScan, ClearingAlgorithm::KinkSearch] {
            let out = clear_with(algo, &bids, &cs);
            assert!(out.allocation().is_empty(), "{algo:?}");
        }
    }

    #[test]
    fn per_pdu_pricing_localizes_prices() {
        // PDU#0 scarce and contested; a second PDU plentiful and cheap.
        let topo = TopologyBuilder::new(Watts::new(1000.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(60.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(60.0))
            .build()
            .unwrap();
        let cs = ConstraintSet::new(
            &topo,
            vec![Watts::new(20.0), Watts::new(200.0)],
            Watts::new(220.0),
        );
        let bids = vec![
            linear(0, 60.0, 0.10, 10.0, 0.50), // hungry on the scarce PDU
            linear(1, 60.0, 0.02, 10.0, 0.20), // cheap on the plentiful PDU
        ];
        let engine = MarketClearing::new(ClearingConfig::kink_search());
        let per_pdu = engine.clear_per_pdu(Slot::ZERO, &bids, &cs);
        assert_eq!(per_pdu.len(), 2);
        // The scarce PDU clears higher than the plentiful one.
        assert!(per_pdu[0].price() > per_pdu[1].price());
        // Each sub-market stays feasible.
        for out in &per_pdu {
            assert!(cs.is_feasible(out.allocation().grants()));
        }
        // Localized pricing extracts at least the uniform revenue here.
        let uniform = engine.clear(Slot::ZERO, &bids, &cs);
        let local_rev: f64 = per_pdu.iter().map(MarketOutcome::revenue_rate).sum();
        assert!(local_rev >= uniform.revenue_rate() - 1e-9);
    }

    #[test]
    fn per_pdu_outcomes_respect_ups_apportionment() {
        // UPS tighter than the PDU sum: shares must cap the sub-markets.
        let topo = TopologyBuilder::new(Watts::new(1000.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(60.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(60.0))
            .build()
            .unwrap();
        let cs = ConstraintSet::new(
            &topo,
            vec![Watts::new(60.0), Watts::new(60.0)],
            Watts::new(50.0),
        );
        let bids = vec![
            linear(0, 60.0, 0.0, 0.0, 0.4),
            linear(1, 60.0, 0.0, 0.0, 0.4),
        ];
        let engine = MarketClearing::default();
        let per_pdu = engine.clear_per_pdu(Slot::ZERO, &bids, &cs);
        let total: f64 = per_pdu.iter().map(|o| o.sold().value()).sum();
        assert!(total <= 50.0 + 1e-6, "UPS share exceeded: {total}");
    }

    #[test]
    fn clearing_respects_heat_zones() {
        // Two racks share a 30 W hot-aisle budget despite 100 W of PDU
        // spot; the market must keep their joint grant under it.
        let cs = constraints(100.0).with_zone(
            "aisle",
            vec![RackId::new(0), RackId::new(1)],
            Watts::new(30.0),
        );
        let bids = vec![
            linear(0, 50.0, 0.0, 0.0, 0.4),
            linear(1, 50.0, 0.0, 0.0, 0.4),
        ];
        for algo in [ClearingAlgorithm::GridScan, ClearingAlgorithm::KinkSearch] {
            let out = clear_with(algo, &bids, &cs);
            assert!(cs.is_feasible(out.allocation().grants()), "{algo:?}");
            assert!(
                out.sold() <= Watts::new(30.0 + 1e-6),
                "{algo:?}: {}",
                out.sold()
            );
        }
    }

    #[test]
    fn clearing_respects_phase_balance() {
        // Both racks on phase 0 of PDU#0: any joint grant beyond the
        // 25 W imbalance bound (vs the empty phases) is infeasible.
        let cs = constraints(100.0).with_phases(vec![0, 0], Watts::new(25.0));
        let bids = vec![
            linear(0, 50.0, 0.0, 0.0, 0.4),
            linear(1, 50.0, 0.0, 0.0, 0.4),
        ];
        let out = clear_with(ClearingAlgorithm::GridScan, &bids, &cs);
        assert!(cs.is_feasible(out.allocation().grants()));
        assert!(out.sold() <= Watts::new(25.0 + 1e-6), "sold {}", out.sold());
    }

    #[test]
    fn scratch_reuse_never_changes_outcomes() {
        // A reused engine (warm candidate buffer) must clear exactly
        // like a fresh engine for every subsequent market, including a
        // smaller one that leaves stale capacity behind.
        let markets: Vec<(Vec<RackBid>, ConstraintSet)> = vec![
            (
                vec![
                    linear(0, 55.0, 0.02, 5.0, 0.35),
                    linear(1, 70.0, 0.05, 15.0, 0.45),
                ],
                constraints(80.0),
            ),
            (vec![linear(0, 40.0, 0.05, 10.0, 0.4)], constraints(30.0)),
            (vec![], constraints(100.0)),
            (vec![linear(1, 30.0, 0.15, 10.0, 0.5)], constraints(200.0)),
        ];
        for config in [
            ClearingConfig::grid(Price::cents_per_kw_hour(0.1)),
            ClearingConfig::kink_search(),
        ] {
            let reused = MarketClearing::new(config);
            let cloned = reused.clone();
            for (slot, (bids, cs)) in markets.iter().enumerate() {
                let warm = reused.clear(Slot::new(slot as u64), bids, cs);
                let fresh = MarketClearing::new(config).clear(Slot::new(slot as u64), bids, cs);
                let from_clone = cloned.clear(Slot::new(slot as u64), bids, cs);
                assert_eq!(warm, fresh, "{config:?} slot {slot}");
                assert_eq!(from_clone, fresh, "{config:?} slot {slot} (clone)");
            }
        }
    }

    #[test]
    fn headroom_clipping_respected_in_grants() {
        // Bid asks for 100 W max but headroom is 60 W.
        let cs = constraints(500.0);
        let bids = vec![linear(0, 100.0, 0.0, 0.0, 0.4)];
        let out = clear_with(ClearingAlgorithm::KinkSearch, &bids, &cs);
        assert!(out.allocation().grant(RackId::new(0)) <= Watts::new(60.0));
    }

    /// A handful of distinct markets for the scratch-pool tests.
    fn distinct_markets() -> Vec<(Vec<RackBid>, ConstraintSet)> {
        vec![
            (
                vec![
                    linear(0, 55.0, 0.02, 5.0, 0.35),
                    linear(1, 70.0, 0.05, 15.0, 0.45),
                ],
                constraints(80.0),
            ),
            (vec![linear(0, 40.0, 0.05, 10.0, 0.4)], constraints(30.0)),
            (vec![linear(1, 30.0, 0.15, 10.0, 0.5)], constraints(200.0)),
            (
                vec![
                    linear(0, 20.0, 0.0, 0.0, 0.25),
                    linear(1, 45.0, 0.1, 5.0, 0.3),
                ],
                constraints(55.0),
            ),
        ]
    }

    #[test]
    fn concurrent_clears_on_one_engine_match_serial() {
        // Many threads hammering one shared engine must produce the
        // same outcomes as clearing the same markets one at a time.
        let markets = distinct_markets();
        for config in [
            ClearingConfig::grid(Price::cents_per_kw_hour(0.1)),
            ClearingConfig::kink_search(),
        ] {
            let engine = MarketClearing::new(config);
            let serial: Vec<MarketOutcome> = markets
                .iter()
                .map(|(bids, cs)| MarketClearing::new(config).clear(Slot::ZERO, bids, cs))
                .collect();
            for round in 0..4 {
                let parallel = spotdc_par::ThreadPool::new(4)
                    .par_map(&markets, |(bids, cs)| engine.clear(Slot::ZERO, bids, cs));
                assert_eq!(parallel, serial, "{config:?} round {round}");
            }
        }
    }

    #[test]
    fn poisoned_scratch_slots_are_skipped() {
        // Poison one pool slot; clearing must route around it and stay
        // correct (the old code silently reused poisoned state).
        let engine = MarketClearing::default();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.scratch[0].lock().unwrap();
            panic!("poison the slot");
        }));
        assert!(engine.scratch[0].is_poisoned());
        let cs = constraints(100.0);
        let bids = vec![linear(0, 40.0, 0.05, 10.0, 0.4)];
        let warm = engine.clear(Slot::ZERO, &bids, &cs);
        let fresh = MarketClearing::default().clear(Slot::ZERO, &bids, &cs);
        assert_eq!(warm, fresh);
    }

    #[test]
    fn clear_falls_back_when_all_scratch_slots_are_busy() {
        // Hold every pool slot (try_lock is non-reentrant, so the
        // clearing below cannot acquire any of them) and verify the
        // stack-local fallback produces the same outcome.
        let engine = MarketClearing::default();
        let cs = constraints(100.0);
        let bids = vec![linear(0, 40.0, 0.05, 10.0, 0.4)];
        let guards: Vec<_> = engine.scratch.iter().map(|m| m.lock().unwrap()).collect();
        let busy = engine.clear(Slot::ZERO, &bids, &cs);
        drop(guards);
        let free = engine.clear(Slot::ZERO, &bids, &cs);
        assert_eq!(busy, free);
    }

    #[test]
    fn submarkets_compose_to_clear_per_pdu() {
        let topo = TopologyBuilder::new(Watts::new(1000.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(60.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::new(60.0))
            .build()
            .unwrap();
        let cs = ConstraintSet::new(
            &topo,
            vec![Watts::new(40.0), Watts::new(90.0)],
            Watts::new(100.0),
        );
        let bids = vec![
            linear(0, 60.0, 0.10, 10.0, 0.50),
            linear(1, 60.0, 0.02, 10.0, 0.20),
        ];
        let engine = MarketClearing::new(ClearingConfig::kink_search());
        let direct = engine.clear_per_pdu(Slot::ZERO, &bids, &cs);
        let subs = engine.per_pdu_submarkets(&bids, &cs);
        assert_eq!(subs.len(), direct.len());
        let composed: Vec<MarketOutcome> = subs
            .iter()
            .map(|(group, local)| engine.clear(Slot::ZERO, group, local))
            .collect();
        assert_eq!(composed, direct);
        // And a parallel merge in sub-market order is identical too.
        let merged = spotdc_par::ThreadPool::new(4).par_map(&subs, |(group, local)| {
            engine.clear(Slot::ZERO, group, local)
        });
        assert_eq!(merged, direct);
    }

    #[test]
    fn ups_only_change_reuses_cached_sums_as_a_hit() {
        // The per-candidate demand sums depend only on the bids; a new
        // UPS bound changes the feasibility filter, not the sums, so
        // the second clear must resolve as a cache hit (zero rows
        // swept) and still match a cold engine under the new bound.
        let config = ClearingConfig::grid(Price::cents_per_kw_hour(0.1));
        let engine = MarketClearing::new(config);
        let bids = vec![
            linear(0, 40.0, 0.05, 10.0, 0.4),
            linear(1, 30.0, 0.10, 5.0, 0.3),
        ];
        let cs = constraints(100.0);
        let _ = engine.clear(Slot::ZERO, &bids, &cs);
        assert_eq!(engine.cache_stats().full_sweeps, 1);

        let tighter = constraints(100.0).with_ups_spot(Watts::new(35.0));
        let warm = engine.clear(Slot::new(1), &bids, &tighter);
        let stats = engine.cache_stats();
        assert_eq!(stats.cache_hits, 1, "{stats:?}");
        assert_eq!(
            stats.candidates_swept,
            stats.candidates_total / 2,
            "a hit sweeps no candidate rows: {stats:?}"
        );
        let fresh = MarketClearing::new(config).clear(Slot::new(1), &bids, &tighter);
        assert_eq!(warm, fresh);
        assert!(warm.sold() <= Watts::new(35.0 + 1e-6));
    }

    #[test]
    fn single_bid_change_triggers_a_delta_resweep() {
        // Ten bids, one d_max nudged between slots: prices (and thus
        // the grid candidate list) are unchanged, so the engine patches
        // the cached sums instead of re-sweeping from scratch.
        let mut b = TopologyBuilder::new(Watts::new(1e5)).pdu(Watts::new(1e4));
        for i in 0..10 {
            b = b.rack(TenantId::new(i), Watts::new(100.0), Watts::new(60.0));
        }
        let topo = b.build().unwrap();
        let cs = ConstraintSet::new(&topo, vec![Watts::new(400.0)], Watts::new(400.0));
        let bids: Vec<RackBid> = (0..10)
            .map(|i| linear(i, 40.0 + i as f64, 0.05, 10.0, 0.4))
            .collect();
        let config = ClearingConfig::grid(Price::cents_per_kw_hour(0.1));
        let engine = MarketClearing::new(config);
        let _ = engine.clear(Slot::ZERO, &bids, &cs);

        let mut changed = bids.clone();
        changed[3] = linear(3, 55.0, 0.05, 10.0, 0.4);
        let warm = engine.clear(Slot::new(1), &changed, &cs);
        let stats = engine.cache_stats();
        assert_eq!(stats.delta_sweeps, 1, "{stats:?}");
        assert!(
            stats.candidates_swept < stats.candidates_total,
            "the delta pass must skip unaffected rows: {stats:?}"
        );
        let fresh = MarketClearing::new(config).clear(Slot::new(1), &changed, &cs);
        assert_eq!(warm, fresh);
    }

    #[test]
    fn bulk_churn_falls_back_to_a_full_sweep() {
        // Changing more than n/8 bids exceeds the delta threshold; the
        // engine must fall back to a full re-sweep, not a patch.
        let mut b = TopologyBuilder::new(Watts::new(1e5)).pdu(Watts::new(1e4));
        for i in 0..10 {
            b = b.rack(TenantId::new(i), Watts::new(100.0), Watts::new(60.0));
        }
        let topo = b.build().unwrap();
        let cs = ConstraintSet::new(&topo, vec![Watts::new(400.0)], Watts::new(400.0));
        let bids: Vec<RackBid> = (0..10)
            .map(|i| linear(i, 40.0 + i as f64, 0.05, 10.0, 0.4))
            .collect();
        let config = ClearingConfig::grid(Price::cents_per_kw_hour(0.1));
        let engine = MarketClearing::new(config);
        let _ = engine.clear(Slot::ZERO, &bids, &cs);

        let mut changed = bids.clone();
        for (i, bid) in changed.iter_mut().enumerate().take(5) {
            *bid = linear(i, 50.0 + i as f64, 0.05, 10.0, 0.4);
        }
        let warm = engine.clear(Slot::new(1), &changed, &cs);
        let stats = engine.cache_stats();
        assert_eq!(stats.full_sweeps, 2, "{stats:?}");
        assert_eq!(stats.delta_sweeps, 0, "{stats:?}");
        let fresh = MarketClearing::new(config).clear(Slot::new(1), &changed, &cs);
        assert_eq!(warm, fresh);
    }

    #[test]
    fn zone_markets_use_the_legacy_scan() {
        // Extra constraints (zones/phases) route through the scalar
        // per-candidate scan; the stats must say so.
        let cs = constraints(100.0).with_zone(
            "aisle",
            vec![RackId::new(0), RackId::new(1)],
            Watts::new(30.0),
        );
        let engine = MarketClearing::default();
        let bids = vec![linear(0, 50.0, 0.0, 0.0, 0.4)];
        let _ = engine.clear(Slot::ZERO, &bids, &cs);
        let stats = engine.cache_stats();
        assert_eq!(stats.legacy_scans, 1, "{stats:?}");
        assert_eq!(stats.full_sweeps, 0, "{stats:?}");
    }
}
