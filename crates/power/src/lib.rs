//! A tree-structured data-center power infrastructure simulator.
//!
//! Multi-tenant data centers deliver power through a tree: grid/generator
//! → UPS → cluster-level PDUs → rack-level PDUs ("power strips") →
//! servers. SpotDC's market operates purely on the observable surface of
//! that tree: it *reads* per-rack power (routine monitoring, per-outlet
//! metering) and *writes* per-rack power budgets (intelligent rack PDUs
//! can be re-limited 20+ times per second). This crate provides exactly
//! that surface, plus the physical context the paper's evaluation needs —
//! capacity oversubscription, circuit-breaker trip behaviour and
//! emergency bookkeeping.
//!
//! The entry point is [`PowerTopology`], built with
//! [`TopologyBuilder`](topology::TopologyBuilder):
//!
//! ```
//! use spotdc_power::topology::TopologyBuilder;
//! use spotdc_units::{TenantId, Watts};
//!
//! let topo = TopologyBuilder::new(Watts::new(1370.0))
//!     .pdu(Watts::new(715.0))
//!     .rack(TenantId::new(0), Watts::new(145.0), Watts::new(60.0))
//!     .rack(TenantId::new(1), Watts::new(115.0), Watts::new(60.0))
//!     .build()?;
//! assert_eq!(topo.rack_count(), 2);
//! # Ok::<(), spotdc_power::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod cap;
pub mod capacity;
pub mod emergency;
pub mod meter;
pub mod rack_pdu;
pub mod topology;

pub use breaker::{BreakerState, CircuitBreaker, TripCurve};
pub use cap::{CapAction, CapConfig, CapController, CapOutcome, SpotTrim};
pub use capacity::{CapacityPlan, Oversubscription};
pub use emergency::{EmergencyEvent, EmergencyLevel, EmergencyLog};
pub use meter::{MeterReading, PowerMeter};
pub use rack_pdu::{BudgetChange, RackPduBank};
pub use topology::{PowerTopology, RackSpec, TopologyBuilder, TopologyError};
