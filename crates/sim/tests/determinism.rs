//! The parallel layer's correctness anchor: experiment output must be
//! byte-identical regardless of the worker count — both the
//! experiment-level fan-out (`--jobs`) and the within-slot width
//! (`--inner-jobs`). Runs a cheap subset of the registry (covering the
//! mode fan-out, the join helper, the engine-grid fan-out, the shared
//! trace cache, and the fault-injected robustness sweep with its
//! invariant checker) over the {jobs} × {inner_jobs} grid {1, 4}²,
//! and compares the rendered bodies byte for byte — exactly what
//! `repro --jobs N --inner-jobs M` prints.

use proptest::prelude::*;
use spotdc_faults::FaultConfig;
use spotdc_par::ThreadPool;
use spotdc_sim::engine::{EngineConfig, Simulation};
use spotdc_sim::experiments::{run_selected, ExpConfig};
use spotdc_sim::{Mode, Scenario};

#[test]
fn rendered_experiments_are_byte_identical_across_job_counts() {
    // fig10: single staged run; fig11: join(); fig13: run_modes();
    // ablations: run_engines() over seven variants + granularity study;
    // robustness: fault-injected engines with the per-slot invariant
    // checker armed — the fault schedule itself must be thread-count
    // independent.
    let ids = ["fig10", "fig11", "fig13", "ablations", "robustness"];
    let render = |jobs: usize, inner_jobs: usize| -> String {
        let cfg = ExpConfig {
            days: 0.25,
            seed: 9,
            quick: true,
            inner_jobs,
        };
        run_selected(&ids, &cfg, ThreadPool::new(jobs))
            .into_iter()
            .map(|t| t.expect("known id").output.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let reference = render(1, 1);
    for (jobs, inner_jobs) in [(1, 4), (4, 1), (4, 4)] {
        assert_eq!(
            reference,
            render(jobs, inner_jobs),
            "jobs={jobs} inner_jobs={inner_jobs} diverged from the serial reference"
        );
    }
    // And a repeat at the widest grid point is stable too (no hidden
    // global state leaking between runs).
    assert_eq!(render(4, 4), render(4, 4));
}

/// The distributed clearing plane sits on the same anchor: a
/// {shards 2,4} × {transport} grid must reproduce the serial
/// single-process report byte for byte in every mode that allocates
/// spot — uniform, per-PDU sub-markets, and max-perf water-filling.
/// The controller's serial in-order merge is what makes this hold.
#[test]
fn sharded_runs_match_the_serial_report_across_the_grid() {
    use spotdc_dist::TransportKind;
    let run = |mode: Mode, per_pdu: bool, shards: usize, transport: TransportKind| {
        let config = EngineConfig {
            per_pdu_pricing: per_pdu,
            shards,
            shard_transport: transport,
            ..EngineConfig::new(mode)
        };
        Simulation::new(Scenario::testbed(7), config).run(80)
    };
    let transports: &[TransportKind] = if spotdc_dist::agent_binary().is_some() {
        &[TransportKind::InProc, TransportKind::Subprocess]
    } else {
        // `cargo test -p spotdc-sim --test determinism` alone does not
        // build the agent binary; the workspace test run and
        // scripts/smoke_dist cover the subprocess leg.
        eprintln!("skipping subprocess legs: spotdc-agent not built");
        &[TransportKind::InProc]
    };
    for (mode, per_pdu) in [
        (Mode::SpotDc, false),
        (Mode::SpotDc, true),
        (Mode::MaxPerf, false),
    ] {
        let serial = run(mode, per_pdu, 1, TransportKind::InProc);
        for &transport in transports {
            for shards in [2, 4] {
                assert_eq!(
                    serial,
                    run(mode, per_pdu, shards, transport),
                    "mode {mode} per_pdu={per_pdu} shards={shards} ({transport}) \
                     diverged from the serial report"
                );
            }
        }
    }
}

fn faulted_engine(fault_seed: u64) -> EngineConfig {
    EngineConfig {
        faults: FaultConfig::uniform(0.1, fault_seed),
        ..EngineConfig::new(Mode::SpotDc)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A fault plan is a pure function of its seed: two runs over the
    /// identical plan produce byte-identical reports, with the same
    /// faults fired in the same slots.
    #[test]
    fn identical_fault_seeds_are_byte_identical(fault_seed in 0u64..1_000_000) {
        let run = || {
            Simulation::new(Scenario::testbed(5), faulted_engine(fault_seed)).run(60)
        };
        let a = run();
        let b = run();
        prop_assert!(a.faults_injected > 0, "expected faults at rate 0.1");
        prop_assert_eq!(a, b);
    }

    /// Different fault seeds schedule different faults (over a horizon
    /// long enough that two independent 10 %-rate schedules colliding
    /// everywhere is impossible in practice).
    #[test]
    fn different_fault_seeds_diverge(fault_seed in 0u64..1_000_000) {
        let run = |s: u64| {
            Simulation::new(Scenario::testbed(5), faulted_engine(s)).run(60)
        };
        let a = run(fault_seed);
        let b = run(fault_seed ^ 0xdead_beef);
        prop_assert_ne!(a, b);
    }
}
