//! Minimal CSV reading/writing for traces and experiment series.
//!
//! Real deployments will want to feed SpotDC *measured* traces (the
//! paper used a commercial colo's PDU trace and Google cluster data).
//! This module round-trips numeric column series through plain CSV —
//! no quoting dialects, just finite numbers — so measured data can be
//! dropped in where the synthetic generators are used.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// An error while reading a numeric CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a finite number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending cell text.
        cell: String,
    },
    /// A row had a different number of columns than the header.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        found: usize,
        /// Columns expected.
        expected: usize,
    },
    /// The input had no header row.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::BadNumber { line, cell } => {
                write!(f, "line {line}: cell {cell:?} is not a finite number")
            }
            CsvError::RaggedRow {
                line,
                found,
                expected,
            } => write!(f, "line {line}: {found} columns, expected {expected}"),
            CsvError::Empty => write!(f, "input has no header row"),
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// A set of named numeric columns of equal length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NumericCsv {
    headers: Vec<String>,
    columns: Vec<Vec<f64>>,
}

impl NumericCsv {
    /// Creates an empty table with the given column names.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Self {
        let columns = vec![Vec::new(); headers.len()];
        NumericCsv {
            headers: headers.into_iter().map(str::to_owned).collect(),
            columns,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// The column names.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Whether there are no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column named `name`, if present.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.headers
            .iter()
            .position(|h| h == name)
            .map(|i| self.columns[i].as_slice())
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Returns [`CsvError::Io`] on write failure.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), CsvError> {
        writeln!(w, "{}", self.headers.join(","))?;
        for row in 0..self.len() {
            let cells: Vec<String> = self.columns.iter().map(|c| format!("{}", c[row])).collect();
            writeln!(w, "{}", cells.join(","))?;
        }
        Ok(())
    }

    /// Reads a table from CSV: one header row, then numeric rows.
    ///
    /// # Errors
    ///
    /// Returns [`CsvError`] on I/O failure, a non-numeric cell, a
    /// ragged row, or empty input.
    pub fn read_from<R: BufRead>(r: R) -> Result<Self, CsvError> {
        let mut lines = r.lines();
        let header_line = lines.next().ok_or(CsvError::Empty)??;
        let headers: Vec<String> = header_line
            .split(',')
            .map(|h| h.trim().to_owned())
            .collect();
        let mut columns = vec![Vec::new(); headers.len()];
        for (idx, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != headers.len() {
                return Err(CsvError::RaggedRow {
                    line: idx + 2,
                    found: cells.len(),
                    expected: headers.len(),
                });
            }
            for (col, cell) in columns.iter_mut().zip(&cells) {
                let v: f64 = cell
                    .trim()
                    .parse()
                    .ok()
                    .filter(|v: &f64| v.is_finite())
                    .ok_or_else(|| CsvError::BadNumber {
                        line: idx + 2,
                        cell: (*cell).to_owned(),
                    })?;
                col.push(v);
            }
        }
        Ok(NumericCsv { headers, columns })
    }
}

/// Writes a single named series as a two-column CSV (`index,<name>`).
///
/// # Errors
///
/// Returns [`CsvError::Io`] on write failure.
pub fn write_series<W: Write>(w: W, name: &str, series: &[f64]) -> Result<(), CsvError> {
    let mut table = NumericCsv::new(vec!["index", name]);
    for (i, &v) in series.iter().enumerate() {
        table.push_row(&[i as f64, v]);
    }
    table.write_to(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_csv() {
        let mut t = NumericCsv::new(vec!["slot", "power"]);
        t.push_row(&[0.0, 415.5]);
        t.push_row(&[1.0, 423.25]);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = NumericCsv::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.column("power"), Some(&[415.5, 423.25][..]));
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn rejects_bad_numbers_with_location() {
        let input = "a,b\n1,2\nx,4\n";
        let err = NumericCsv::read_from(input.as_bytes()).unwrap_err();
        match err {
            CsvError::BadNumber { line, cell } => {
                assert_eq!(line, 3);
                assert_eq!(cell, "x");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejects_ragged_rows() {
        let input = "a,b\n1,2,3\n";
        let err = NumericCsv::read_from(input.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::RaggedRow { line: 2, .. }));
    }

    #[test]
    fn rejects_non_finite_and_empty() {
        assert!(NumericCsv::read_from("a\ninf\n".as_bytes()).is_err());
        assert!(matches!(
            NumericCsv::read_from("".as_bytes()).unwrap_err(),
            CsvError::Empty
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let t = NumericCsv::read_from("a\n1\n\n2\n".as_bytes()).unwrap();
        assert_eq!(t.column("a"), Some(&[1.0, 2.0][..]));
    }

    #[test]
    fn series_helper() {
        let mut buf = Vec::new();
        write_series(&mut buf, "watts", &[10.0, 20.0]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "index,watts\n0,10\n1,20\n");
    }

    #[test]
    fn missing_column_is_none() {
        let t = NumericCsv::new(vec!["x"]);
        assert!(t.column("y").is_none());
        assert!(t.is_empty());
    }
}
