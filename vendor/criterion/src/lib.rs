//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the criterion 0.5 API the SpotDC benches
//! use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_with_input`, `Bencher::iter`) over a simple wall-clock
//! harness: per benchmark it calibrates an iteration count to a small
//! time budget, takes `sample_size` samples, and prints min/median/mean
//! nanoseconds per iteration. No statistical regression analysis, no
//! HTML reports, no saved baselines — compare the printed medians.
//!
//! When invoked with `--test` (as `cargo test` does for benchmark
//! targets) every routine runs exactly once, as upstream does, so test
//! runs stay fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

// Prevents the optimizer from deleting a benchmark's work
// (re-exported std::hint::black_box, as upstream does).
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    /// Optional substring filter from the command line.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // First free (non-flag) argument filters benchmark ids, as
        // `cargo bench -- <substring>` does upstream.
        let filter = args.iter().find(|a| !a.starts_with("--")).cloned();
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id, 20, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let sample_size = self.sample_size;
        run_one(
            self.criterion,
            &full,
            sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let sample_size = self.sample_size;
        run_one(self.criterion, &full, sample_size, &mut f);
        self
    }

    /// Ends the group (upstream writes reports here; here it is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter.
    #[must_use]
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    /// Converts `self` into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_owned())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Passed to benchmark closures to time the routine under test.
pub struct Bencher {
    mode: BenchMode,
    /// Measured nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

enum BenchMode {
    /// `--test`: run the routine once, measure nothing.
    TestOnce,
    /// Measure `samples` samples.
    Measure { sample_size: usize },
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::TestOnce => {
                black_box(routine());
            }
            BenchMode::Measure { sample_size } => {
                // Calibrate: how many iterations fit the per-sample
                // budget? (Also serves as warm-up.)
                const SAMPLE_BUDGET: Duration = Duration::from_millis(10);
                let start = Instant::now();
                black_box(routine());
                let once = start.elapsed().max(Duration::from_nanos(1));
                let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
                self.samples.clear();
                for _ in 0..sample_size {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
                    self.samples.push(per_iter);
                }
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, id: &str, sample_size: usize, f: &mut F) {
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mode = if criterion.test_mode {
        BenchMode::TestOnce
    } else {
        BenchMode::Measure { sample_size }
    };
    let mut bencher = Bencher {
        mode,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if criterion.test_mode {
        println!("{id}: test ok");
        return;
    }
    let mut sorted = bencher.samples.clone();
    if sorted.is_empty() {
        println!("{id}: no samples (routine never called iter)");
        return;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{id:<56} min {:>12} median {:>12} mean {:>12}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("scan", 128).0, "scan/128");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.300 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.300 ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.000 s");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            mode: BenchMode::Measure { sample_size: 3 },
            samples: Vec::new(),
        };
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }
}
