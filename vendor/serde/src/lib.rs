//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports
//! the no-op derives from the stand-in `serde_derive`, so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! without network access. SpotDC never calls the traits (all wire
//! formats are hand-rolled), so they carry no methods.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
