//! The controller's side of the split: dispatching clear tasks across
//! shard agents and merging replies deterministically.

use std::io;
use std::time::Instant;

use spotdc_core::{ClearResult, ClearTask, ClearingConfig, WireMsg};
use spotdc_telemetry::Event;
use spotdc_units::{MonotonicNanos, Slot};

use crate::transport::{agent_binary, InProcTransport, ShardTransport, SubprocessTransport};
use crate::TransportKind;

/// The controller's handle on a fleet of shard agents.
///
/// Tasks are assigned round-robin (`task i → shard i % shard_count`),
/// the whole slot is sent to every shard up front so agents overlap,
/// and replies are consumed strictly in shard order — a serial in-order
/// merge, which is what keeps reports byte-identical regardless of how
/// many shards run or how fast each one answers.
///
/// A shard whose transport fails — send error, torn or corrupt frame,
/// short or mismatched reply, dead process — is marked dead for the
/// rest of the run; its tasks come back as `None` and the caller
/// degrades those sub-markets to "no spot capacity" (the paper's
/// comms-loss rule). Everything else keeps clearing.
#[derive(Debug)]
pub struct ShardRuntime {
    shards: Vec<ShardConn>,
    kind: TransportKind,
}

#[derive(Debug)]
struct ShardConn {
    transport: Box<dyn ShardTransport>,
    alive: bool,
}

impl ShardRuntime {
    /// Starts `count` shard agents over `kind` transports and assigns
    /// each its shard index and the clearing configuration.
    ///
    /// # Errors
    ///
    /// Subprocess transport only: the `spotdc-agent` binary was not
    /// found (see [`agent_binary`]) or failed to spawn. In-process
    /// startup is infallible.
    ///
    /// # Panics
    ///
    /// If `count` is zero.
    pub fn new(count: usize, kind: TransportKind, clearing: ClearingConfig) -> io::Result<Self> {
        assert!(count > 0, "a shard runtime needs at least one shard");
        let _span = spotdc_telemetry::span!("dist.start", shards = count);
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            let transport: Box<dyn ShardTransport> = match kind {
                TransportKind::InProc => Box::new(InProcTransport::spawn()),
                TransportKind::Subprocess => {
                    let binary = agent_binary().ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::NotFound,
                            "spotdc-agent binary not found: set SPOTDC_AGENT_BIN or \
                             build it next to the current executable",
                        )
                    })?;
                    Box::new(SubprocessTransport::spawn(&binary)?)
                }
            };
            shards.push(ShardConn {
                transport,
                alive: true,
            });
        }
        let mut runtime = ShardRuntime { shards, kind };
        for id in 0..count {
            runtime.send(
                Slot::ZERO,
                id,
                &WireMsg::AssignShard {
                    shard: id as u64,
                    shard_count: count as u64,
                    clearing,
                },
            );
        }
        Ok(runtime)
    }

    /// The number of shards in the topology (dead ones included — the
    /// task assignment never re-balances, so degradation stays local to
    /// the failed shard).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The transport the runtime was started with.
    #[must_use]
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// How many shards are still serving.
    #[must_use]
    pub fn live_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.alive).count()
    }

    /// Dispatches one slot's tasks across the shards and returns one
    /// entry per task, in task order: `Some(result)` from a healthy
    /// shard, `None` for every task owned by a dead one.
    pub fn clear_tasks(&mut self, slot: Slot, tasks: Vec<ClearTask>) -> Vec<Option<ClearResult>> {
        let _span = spotdc_telemetry::span!("dist.clear", slot = slot);
        let count = self.shards.len();
        let total = tasks.len();
        let mut per_shard: Vec<Vec<ClearTask>> = (0..count).map(|_| Vec::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            per_shard[i % count].push(task);
        }
        let expected: Vec<usize> = per_shard.iter().map(Vec::len).collect();
        let started = Instant::now();
        // Send phase: every live shard gets its whole slot up front so
        // the shards compute concurrently.
        for (idx, batch) in per_shard.into_iter().enumerate() {
            if self.send(slot, idx, &WireMsg::SlotOpen { slot }) {
                self.send(slot, idx, &WireMsg::BidsBatch { slot, tasks: batch });
            }
        }
        // Receive phase: strictly in shard order, so the merge below is
        // serial and deterministic no matter who finished first.
        let mut replies: Vec<Option<std::vec::IntoIter<ClearResult>>> = Vec::with_capacity(count);
        for (idx, &expected) in expected.iter().enumerate() {
            replies.push(self.recv_cleared(slot, idx, expected, started));
        }
        // The merge is the caller's; from the agents' view the slot is
        // done.
        for idx in 0..count {
            self.send(slot, idx, &WireMsg::Settle { slot });
        }
        // Stitch per-shard replies back into task order.
        let mut out = Vec::with_capacity(total);
        for i in 0..total {
            out.push(replies[i % count].as_mut().and_then(Iterator::next));
        }
        out
    }

    /// Sends to shard `idx`, marking it dead on failure. Returns
    /// whether the send succeeded.
    fn send(&mut self, slot: Slot, idx: usize, msg: &WireMsg) -> bool {
        let conn = &mut self.shards[idx];
        if !conn.alive {
            return false;
        }
        match conn.transport.send(msg) {
            Ok(bytes) => {
                emit_rpc(slot, idx, "send", msg.name(), bytes);
                true
            }
            Err(_) => {
                conn.alive = false;
                false
            }
        }
    }

    /// Receives shard `idx`'s reply for `slot`. Anything but a
    /// well-formed `ShardCleared` for the right slot with one result
    /// per task kills the shard.
    fn recv_cleared(
        &mut self,
        slot: Slot,
        idx: usize,
        expected: usize,
        started: Instant,
    ) -> Option<std::vec::IntoIter<ClearResult>> {
        if !self.shards[idx].alive {
            return None;
        }
        match self.shards[idx].transport.recv() {
            Ok((
                WireMsg::ShardCleared {
                    slot: reply,
                    results,
                },
                bytes,
            )) if reply == slot && results.len() == expected => {
                emit_rpc(slot, idx, "recv", "ShardCleared", bytes);
                if spotdc_telemetry::is_enabled() {
                    spotdc_telemetry::emit(Event::ShardCleared {
                        slot,
                        at: MonotonicNanos::now(),
                        shard: idx as u64,
                        outcomes: results.len() as u64,
                        nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    });
                }
                Some(results.into_iter())
            }
            _ => {
                self.shards[idx].alive = false;
                None
            }
        }
    }
}

fn emit_rpc(slot: Slot, shard: usize, dir: &str, msg: &str, bytes: u64) {
    if spotdc_telemetry::is_enabled() {
        spotdc_telemetry::emit(Event::ShardRpc {
            slot,
            at: MonotonicNanos::now(),
            shard: shard as u64,
            dir: dir.to_owned(),
            msg: msg.to_owned(),
            bytes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotdc_core::{ConstraintSet, LinearBid, MarketClearing, RackBid, StepBid};
    use spotdc_power::topology::TopologyBuilder;
    use spotdc_units::{Price, RackId, TenantId, Watts};

    fn constraints() -> ConstraintSet {
        let topo = TopologyBuilder::new(Watts::new(400.0))
            .pdu(Watts::new(200.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
            .rack(TenantId::new(1), Watts::new(80.0), Watts::new(40.0))
            .build()
            .unwrap();
        ConstraintSet::new(&topo, vec![Watts::new(60.0)], Watts::new(60.0))
    }

    fn tasks() -> Vec<ClearTask> {
        let constraints = constraints();
        vec![
            ClearTask::Market {
                bids: vec![RackBid::new(
                    RackId::new(0),
                    LinearBid::new(
                        Watts::new(40.0),
                        Price::per_kw_hour(0.05),
                        Watts::new(10.0),
                        Price::per_kw_hour(0.30),
                    )
                    .unwrap()
                    .into(),
                )],
                constraints: constraints.clone(),
            },
            ClearTask::Market {
                bids: vec![RackBid::new(
                    RackId::new(1),
                    StepBid::new(Watts::new(25.0), Price::per_kw_hour(0.2))
                        .unwrap()
                        .into(),
                )],
                constraints,
            },
        ]
    }

    #[test]
    fn inproc_runtime_matches_direct_clearing_for_any_width() {
        let slot = Slot::new(11);
        let direct = MarketClearing::new(ClearingConfig::default());
        let want: Vec<ClearResult> = tasks()
            .iter()
            .map(|t| {
                let ClearTask::Market { bids, constraints } = t else {
                    unreachable!()
                };
                ClearResult::Market(direct.clear(slot, bids, constraints))
            })
            .collect();
        for width in [1, 2, 3] {
            let mut runtime =
                ShardRuntime::new(width, TransportKind::InProc, ClearingConfig::default()).unwrap();
            assert_eq!(runtime.shard_count(), width);
            assert_eq!(runtime.live_shards(), width);
            let got: Vec<ClearResult> = runtime
                .clear_tasks(slot, tasks())
                .into_iter()
                .map(|r| r.expect("healthy shards answer every task"))
                .collect();
            assert_eq!(got, want, "width {width}");
        }
    }

    #[test]
    fn empty_task_lists_are_fine() {
        let mut runtime =
            ShardRuntime::new(2, TransportKind::InProc, ClearingConfig::default()).unwrap();
        assert!(runtime.clear_tasks(Slot::new(0), Vec::new()).is_empty());
        assert_eq!(runtime.live_shards(), 2);
    }
}
