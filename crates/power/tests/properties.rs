//! Property-based tests for the power infrastructure simulator.

use proptest::prelude::*;
use spotdc_power::topology::TopologyBuilder;
use spotdc_power::{
    BreakerState, CircuitBreaker, EmergencyLog, Oversubscription, PowerMeter, RackPduBank,
    TripCurve,
};
use spotdc_units::{RackId, Slot, SlotDuration, TenantId, Watts};

fn rack_specs() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((1.0..500.0f64, 0.0..200.0f64), 1..30)
}

fn build_topology(specs: &[(f64, f64)]) -> spotdc_power::PowerTopology {
    let mut b = TopologyBuilder::new(Watts::new(1e6)).pdu(Watts::new(1e6));
    for (i, &(g, h)) in specs.iter().enumerate() {
        b = b.rack(TenantId::new(i), Watts::new(g), Watts::new(h));
    }
    b.build().expect("valid topology")
}

proptest! {
    #[test]
    fn leased_total_is_sum_of_racks(specs in rack_specs()) {
        let topo = build_topology(&specs);
        let expect: f64 = specs.iter().map(|s| s.0).sum();
        prop_assert!((topo.total_leased().value() - expect).abs() < 1e-6);
    }

    #[test]
    fn meter_ups_equals_sum_of_pdus(specs in rack_specs(), loads in prop::collection::vec(0.0..400.0f64, 30)) {
        let topo = build_topology(&specs);
        let mut meter = PowerMeter::new(&topo, 4).expect("positive history length");
        for (i, _) in specs.iter().enumerate() {
            meter.record(Slot::ZERO, RackId::new(i), Watts::new(loads[i % loads.len()]));
        }
        let pdu_sum: Watts = meter.pdu_powers().into_iter().sum();
        prop_assert!(meter.ups_power().approx_eq(pdu_sum, 1e-6));
    }

    #[test]
    fn budgets_never_exceed_physical_limits(specs in rack_specs(), grants in prop::collection::vec(0.0..500.0f64, 30)) {
        let topo = build_topology(&specs);
        let mut bank = RackPduBank::new(&topo);
        for (i, spec) in specs.iter().enumerate() {
            let rack = RackId::new(i);
            let grant = Watts::new(grants[i % grants.len()]);
            let _ = bank.grant_spot(Slot::ZERO, rack, grant); // may legitimately fail
            let limit = Watts::new(spec.0 + spec.1);
            prop_assert!(bank.budget(rack) <= limit + Watts::new(1e-6));
            prop_assert!(bank.budget(rack) >= Watts::new(spec.0) - Watts::new(1e-6));
        }
    }

    #[test]
    fn grant_within_headroom_always_succeeds(specs in rack_specs()) {
        let topo = build_topology(&specs);
        let mut bank = RackPduBank::new(&topo);
        for (i, spec) in specs.iter().enumerate() {
            let rack = RackId::new(i);
            let grant = Watts::new(spec.1 * 0.999);
            prop_assert!(bank.grant_spot(Slot::ZERO, rack, grant).is_ok());
            prop_assert!(bank.spot_grant(rack).approx_eq(grant, 1e-9));
        }
    }

    #[test]
    fn oversubscription_round_trips(percent in -50.0..100.0f64, sub in 1.0..1e6f64) {
        let os = Oversubscription::percent(percent);
        let phys = os.physical_for_subscribed(Watts::new(sub));
        let back = os.subscribed_for_physical(phys);
        prop_assert!((back.value() - sub).abs() < 1e-6 * sub.max(1.0));
    }

    #[test]
    fn breaker_never_trips_within_tolerance(rating in 10.0..1e5f64, frac in 0.0..1.0f64, slots in 1usize..200) {
        let curve = TripCurve::default();
        let mut b = CircuitBreaker::new(Watts::new(rating), curve);
        let load = Watts::new(rating * frac * curve.tolerance());
        let dur = SlotDuration::from_secs(300);
        for _ in 0..slots {
            prop_assert_eq!(b.apply_load(load, dur), BreakerState::Closed);
        }
    }

    #[test]
    fn breaker_trip_time_monotone(rating in 100.0..1e4f64, r1 in 1.1..1.8f64, extra in 0.05..1.0f64) {
        let slots_to_trip = |ratio: f64| {
            let mut b = CircuitBreaker::new(Watts::new(rating), TripCurve::default());
            let dur = SlotDuration::from_secs(10);
            let mut n = 0u32;
            while b.apply_load(Watts::new(rating * ratio), dur) == BreakerState::Closed {
                n += 1;
                if n > 100_000 { break; }
            }
            n
        };
        // A strictly more severe overload never takes longer to trip.
        prop_assert!(slots_to_trip(r1 + extra) <= slots_to_trip(r1));
    }

    #[test]
    fn emergencies_iff_capacity_exceeded(load0 in 0.0..200.0f64, load1 in 0.0..200.0f64) {
        let topo = TopologyBuilder::new(Watts::new(180.0))
            .pdu(Watts::new(100.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::ZERO)
            .pdu(Watts::new(100.0))
            .rack(TenantId::new(1), Watts::new(100.0), Watts::ZERO)
            .build()
            .unwrap();
        let mut log = EmergencyLog::new(&topo);
        let events = log.observe(Slot::ZERO, &[Watts::new(load0), Watts::new(load1)]);
        let expect = usize::from(load0 > 100.0)
            + usize::from(load1 > 100.0)
            + usize::from(load0 + load1 > 180.0);
        prop_assert_eq!(events.len(), expect);
    }
}
