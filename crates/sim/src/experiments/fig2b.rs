//! Fig. 2(b): CDF of tenants' aggregate power — why spot capacity
//! exists.
//!
//! Five tenants share a PDU sized for their joint maximum; the CDF of
//! their aggregate power sits far left of the ideal (always-100%)
//! vertical line. Oversubscribing by admitting two more tenants moves
//! the CDF right (utilization gain, area "A") at the cost of occasional
//! over-capacity slots (area "B"); the remaining gap below capacity is
//! the spot capacity SpotDC sells (area "C").

use spotdc_traces::{Cdf, PduPowerTrace};
use spotdc_units::Watts;

use crate::experiments::common::{ExpConfig, ExpOutput};
use crate::report::TextTable;

/// The aggregate-power CDFs and region areas.
#[derive(Debug, Clone)]
pub struct Fig2bResult {
    /// CDF of 5 tenants' aggregate power, normalized to the capacity.
    pub base: Cdf,
    /// CDF with 2 extra tenants (oversubscribed), same normalization.
    pub oversubscribed: Cdf,
    /// Average utilization of the base group.
    pub base_utilization: f64,
    /// Average utilization after oversubscription.
    pub oversub_utilization: f64,
    /// Fraction of slots exceeding capacity after oversubscription
    /// (area "B" — emergencies).
    pub emergency_fraction: f64,
    /// Average unused fraction after oversubscription (area "C" — spot
    /// capacity).
    pub spot_fraction: f64,
}

/// Computes the figure's data.
#[must_use]
pub fn compute(cfg: &ExpConfig) -> Fig2bResult {
    let slots = (cfg.days.max(3.0) * 720.0) as usize;
    // Seven tenants with diverse mean draws, as in a retail colo PDU.
    // The base tenants are day-time businesses peaking near each other;
    // the two extra tenants the operator admits are night-leaning
    // (counter-phase) — which is exactly what makes the
    // oversubscription safe.
    let means = [95.0, 120.0, 80.0, 150.0, 110.0, 15.0, 10.0];
    let phases = [0.70, 0.75, 0.80, 0.73, 0.77, 0.25, 0.30];
    let traces: Vec<Vec<Watts>> = means
        .iter()
        .zip(phases)
        .enumerate()
        .map(|(i, (&m, phase))| {
            PduPowerTrace::colo_like(Watts::new(m), cfg.seed ^ (i as u64 * 7919 + 13))
                .with_peak_phase(phase)
                .generate(slots)
        })
        .collect();
    let sum_of =
        |count: usize, t: usize| -> f64 { traces[..count].iter().map(|tr| tr[t].value()).sum() };
    let base_series: Vec<f64> = (0..slots).map(|t| sum_of(5, t)).collect();
    let over_series: Vec<f64> = (0..slots).map(|t| sum_of(7, t)).collect();
    // Capacity provisioned at the base group's maximum demand.
    let capacity = base_series.iter().cloned().fold(0.0, f64::max);
    let base = Cdf::from_samples(base_series.iter().map(|p| p / capacity));
    let oversubscribed = Cdf::from_samples(over_series.iter().map(|p| p / capacity));
    let emergency_fraction = 1.0 - oversubscribed.fraction_at_or_below(1.0);
    let spot_fraction = over_series
        .iter()
        .map(|&p| (capacity - p).max(0.0) / capacity)
        .sum::<f64>()
        / slots as f64;
    Fig2bResult {
        base_utilization: base.mean(),
        oversub_utilization: oversubscribed.mean().min(1.0),
        emergency_fraction,
        spot_fraction,
        base,
        oversubscribed,
    }
}

/// Renders Fig. 2(b).
#[must_use]
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let r = compute(cfg);
    let mut table = TextTable::new(vec![
        "utilization",
        "CDF (5 tenants)",
        "CDF (+2, oversub.)",
        "ideal",
    ]);
    for i in 0..=10 {
        let x = 0.3 + 0.08 * f64::from(i);
        table.row(vec![
            format!("{x:.2}"),
            format!("{:.3}", r.base.fraction_at_or_below(x)),
            format!("{:.3}", r.oversubscribed.fraction_at_or_below(x)),
            format!("{:.0}", if x >= 1.0 { 1.0 } else { 0.0 }),
        ]);
    }
    let mut body = table.render();
    body.push_str(&format!(
        "\navg utilization: {:.1}% -> {:.1}% after oversubscription (area A)\n\
         over-capacity slots (area B): {:.2}%\n\
         avg unused 'spot' capacity (area C): {:.1}% of PDU capacity\n",
        100.0 * r.base_utilization,
        100.0 * r.oversub_utilization,
        100.0 * r.emergency_fraction,
        100.0 * r.spot_fraction,
    ));
    ExpOutput {
        id: "fig2b".into(),
        title: "CDF of tenants' aggregate power usage".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversubscription_improves_utilization_but_adds_risk() {
        let r = compute(&ExpConfig::quick());
        assert!(r.oversub_utilization > r.base_utilization + 0.02);
        assert!(
            (0.0001..0.30).contains(&r.emergency_fraction),
            "B should exist but be occasional: {}",
            r.emergency_fraction
        );
        assert!(r.spot_fraction > 0.03, "C must exist: {}", r.spot_fraction);
    }

    #[test]
    fn base_never_exceeds_capacity() {
        let r = compute(&ExpConfig::quick());
        assert!(r.base.max().unwrap() <= 1.0 + 1e-9);
    }

    #[test]
    fn renders() {
        let out = run(&ExpConfig::quick());
        assert!(out.body.contains("area C"));
    }
}
