//! Dollar accounting: tenant bills and operator profit.
//!
//! The paper's economics (Sections II, IV-C, V-B):
//!
//! * tenants pay a **reservation** charge of US$120–250/kW/month for
//!   guaranteed capacity, plus **metered energy**, plus (with SpotDC)
//!   **spot payments**;
//! * the operator's costs are the **amortized capital expense** of the
//!   shared power infrastructure (US$10–25/W over its life) and, for
//!   SpotDC, the cheap rack-level headroom over-provisioning
//!   (US¢40/W amortized over 15 years);
//! * spot capacity itself has **no marginal operating cost** — energy
//!   is metered to tenants — so spot revenue net of the tiny headroom
//!   amortization is pure extra profit.

use serde::{Deserialize, Serialize};
use spotdc_units::{Money, Price, Watts};

/// Hours in the 30-day billing month used for colo rates.
const HOURS_PER_MONTH: f64 = 30.0 * 24.0;

/// Billing and cost parameters for one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Billing {
    /// Guaranteed-capacity rate, US$/kW/month (paper: 120–250).
    pub reservation_rate_month: f64,
    /// Metered energy rate, US$/kWh.
    pub energy_rate: f64,
    /// Shared-infrastructure capital expense, US$/W (paper: 10–25).
    pub infra_capex_per_watt: f64,
    /// Rack-headroom capital expense, US$/W (paper: 0.2–0.5).
    pub headroom_capex_per_watt: f64,
    /// Amortization horizon for capital expenses, years (paper: 15).
    pub amortization_years: f64,
}

impl Billing {
    /// The defaults used throughout the evaluation: $170/kW/month
    /// reservations (≙ $0.236/kW/h amortized), $0.10/kWh energy, $25/W
    /// infrastructure, $0.40/W rack headroom, 15-year amortization.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Billing {
            reservation_rate_month: 170.0,
            energy_rate: 0.10,
            infra_capex_per_watt: 25.0,
            headroom_capex_per_watt: 0.40,
            amortization_years: 15.0,
        }
    }

    /// The amortized hourly reservation price ($/kW/h) — the natural
    /// ceiling for opportunistic bids.
    #[must_use]
    pub fn amortized_reservation_price(&self) -> Price {
        Price::from_monthly_rate(self.reservation_rate_month)
    }

    /// Reservation revenue rate ($/hour) for `subscribed` capacity.
    #[must_use]
    pub fn reservation_rate(&self, subscribed: Watts) -> f64 {
        subscribed.kilowatts() * self.reservation_rate_month / HOURS_PER_MONTH
    }

    /// Energy cost rate ($/hour) for a draw of `power`.
    #[must_use]
    pub fn energy_rate_for(&self, power: Watts) -> f64 {
        power.kilowatts() * self.energy_rate
    }

    /// Amortized hourly cost ($/hour) of `capacity` of shared
    /// infrastructure.
    #[must_use]
    pub fn infra_amortization(&self, capacity: Watts) -> f64 {
        capacity.value() * self.infra_capex_per_watt / (self.amortization_years * 365.0 * 24.0)
    }

    /// Amortized hourly cost ($/hour) of `headroom` of rack-level
    /// over-provisioning.
    #[must_use]
    pub fn headroom_amortization(&self, headroom: Watts) -> f64 {
        headroom.value() * self.headroom_capex_per_watt / (self.amortization_years * 365.0 * 24.0)
    }
}

impl Default for Billing {
    fn default() -> Self {
        Billing::paper_defaults()
    }
}

/// The operator's profit picture over a simulated horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfitSummary {
    /// Baseline profit rate ($/h): reservations minus infrastructure
    /// amortization — what `PowerCapped` earns.
    pub baseline_rate: f64,
    /// Average spot revenue rate ($/h).
    pub spot_revenue_rate: f64,
    /// Amortized rack-headroom cost rate ($/h).
    pub headroom_cost_rate: f64,
}

impl ProfitSummary {
    /// Net extra profit rate from running SpotDC ($/h).
    #[must_use]
    pub fn extra_rate(&self) -> f64 {
        self.spot_revenue_rate - self.headroom_cost_rate
    }

    /// The headline metric: extra profit as a percentage of baseline
    /// profit (the paper reports +9.7 %).
    #[must_use]
    pub fn extra_percent(&self) -> f64 {
        if self.baseline_rate <= 0.0 {
            return 0.0;
        }
        100.0 * self.extra_rate() / self.baseline_rate
    }

    /// Total profit rate with SpotDC ($/h).
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.baseline_rate + self.extra_rate()
    }
}

/// One tenant's cumulative bill over a horizon.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TenantBill {
    /// Reservation charges, $.
    pub reservation: f64,
    /// Metered energy charges, $.
    pub energy: f64,
    /// Spot-capacity payments, $.
    pub spot: f64,
}

impl TenantBill {
    /// Total bill, $.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.reservation + self.energy + self.spot
    }

    /// The bill as [`Money`].
    #[must_use]
    pub fn total_money(&self) -> Money {
        Money::dollars(self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortized_reservation_price_is_rate_over_month() {
        let b = Billing::paper_defaults();
        let expect = 170.0 / 720.0;
        assert!((b.amortized_reservation_price().per_kw_hour_value() - expect).abs() < 1e-12);
    }

    #[test]
    fn reservation_rate_scales_with_capacity() {
        let b = Billing::paper_defaults();
        // 1 kW at $170/month over 720 h ≈ $0.236/h.
        assert!((b.reservation_rate(Watts::from_kilowatts(1.0)) - 170.0 / 720.0).abs() < 1e-12);
        assert!((b.reservation_rate(Watts::new(750.0)) - 0.75 * 170.0 / 720.0).abs() < 1e-12);
    }

    #[test]
    fn infra_amortization_dwarfs_headroom_amortization() {
        let b = Billing::paper_defaults();
        let infra = b.infra_amortization(Watts::new(1400.0));
        let headroom = b.headroom_amortization(Watts::new(470.0));
        assert!(
            infra > 50.0 * headroom,
            "infra {infra} vs headroom {headroom}"
        );
    }

    #[test]
    fn profit_summary_percent() {
        let p = ProfitSummary {
            baseline_rate: 0.10,
            spot_revenue_rate: 0.0107,
            headroom_cost_rate: 0.0010,
        };
        assert!((p.extra_percent() - 9.7).abs() < 1e-9);
        assert!((p.total_rate() - 0.1097).abs() < 1e-12);
    }

    #[test]
    fn profit_summary_degenerate_baseline() {
        let p = ProfitSummary {
            baseline_rate: 0.0,
            spot_revenue_rate: 1.0,
            headroom_cost_rate: 0.0,
        };
        assert_eq!(p.extra_percent(), 0.0);
    }

    #[test]
    fn tenant_bill_totals() {
        let bill = TenantBill {
            reservation: 20.0,
            energy: 7.0,
            spot: 0.15,
        };
        assert!((bill.total() - 27.15).abs() < 1e-12);
        assert_eq!(bill.total_money(), Money::dollars(27.15));
    }

    #[test]
    fn energy_rate_for_draw() {
        let b = Billing::paper_defaults();
        assert!((b.energy_rate_for(Watts::new(500.0)) - 0.05).abs() < 1e-12);
    }
}
