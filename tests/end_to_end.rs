//! End-to-end integration: the full pipeline assembled by hand from the
//! public API, spanning every crate.

use spotdc::prelude::*;

/// Builds the pipeline the README sketches: agents bid, the operator
/// clears, grants actuate through the rack PDUs, tenants run and
/// everything reconciles.
#[test]
fn manual_market_round_improves_the_needy_tenant() {
    let topology = TopologyBuilder::new(Watts::new(800.0))
        .pdu(Watts::new(800.0))
        .rack(TenantId::new(0), Watts::new(145.0), Watts::new(72.5))
        .rack(TenantId::new(1), Watts::new(125.0), Watts::new(62.5))
        .rack(TenantId::new(2), Watts::new(250.0), Watts::ZERO) // others
        .build()
        .expect("valid topology");

    let mut search = TenantAgent::new(
        TenantId::new(0),
        RackId::new(0),
        Watts::new(145.0),
        Watts::new(72.5),
        WorkloadModel::search(),
        Strategy::elastic(Price::per_kw_hour(0.25), Price::per_kw_hour(0.60)),
    );
    let mut batch = TenantAgent::new(
        TenantId::new(1),
        RackId::new(1),
        Watts::new(125.0),
        Watts::new(62.5),
        WorkloadModel::word_count(),
        Strategy::elastic(Price::per_kw_hour(0.02), Price::per_kw_hour(0.24)),
    );
    search.observe(1.0); // peak traffic: SLO at stake
    batch.observe(0.8); // backlog to chew through

    let mut meter = PowerMeter::new(&topology, 4).expect("positive history length");
    meter.record(Slot::ZERO, RackId::new(0), Watts::new(140.0));
    meter.record(Slot::ZERO, RackId::new(1), Watts::new(118.0));
    meter.record(Slot::ZERO, RackId::new(2), Watts::new(130.0));

    let bids: Vec<TenantBid> = [search.make_bid(), batch.make_bid()]
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(bids.len(), 2, "both tenants should bid");

    let operator = Operator::new(topology.clone(), OperatorConfig::default());
    let round = operator.run_slot(Slot::new(1), &bids, &meter);
    let allocation = round.outcome.allocation();
    assert!(round.rejected.is_empty());
    assert!(
        round.constraints.is_feasible(allocation.grants()),
        "allocation must satisfy rack/PDU/UPS constraints"
    );
    let search_grant = allocation.grant(RackId::new(0));
    assert!(search_grant > Watts::ZERO, "the urgent tenant is served");

    // Actuate and run the slot.
    let mut bank = RackPduBank::new(&topology);
    for (rack, grant) in allocation.iter() {
        bank.grant_spot(Slot::new(1), rack, grant)
            .expect("feasible grant");
    }
    let before = search.run_slot(search.reserved());
    let after = search.run_slot(bank.budget(search.rack()));
    assert!(
        after.performance.index() > before.performance.index(),
        "spot capacity must improve the search tenant's latency"
    );
    // The budget was enough to restore the SLO.
    match after.performance {
        spotdc::tenants::Performance::Latency { slo_met, .. } => {
            assert!(slo_met, "grant should restore the 100 ms SLO")
        }
        spotdc::tenants::Performance::Throughput { .. } => panic!("search reports latency"),
    }

    // Billing reconciles: payment = price × grant × slot duration.
    let slot = SlotDuration::from_secs(120);
    let payment = allocation.payment_for(RackId::new(0), slot);
    let expect = allocation.price().cost_of(search_grant, slot);
    assert!((payment.usd() - expect.usd()).abs() < 1e-12);
}

/// Lost price broadcasts fall back to "no spot capacity" without
/// breaking anything downstream.
#[test]
fn comms_loss_degrades_to_no_spot() {
    use spotdc::market::CommsModel;

    let topology = TopologyBuilder::new(Watts::new(500.0))
        .pdu(Watts::new(500.0))
        .rack(TenantId::new(0), Watts::new(145.0), Watts::new(72.5))
        .build()
        .expect("valid topology");
    let mut agent = TenantAgent::new(
        TenantId::new(0),
        RackId::new(0),
        Watts::new(145.0),
        Watts::new(72.5),
        WorkloadModel::search(),
        Strategy::elastic(Price::per_kw_hour(0.25), Price::per_kw_hour(0.60)),
    );
    agent.observe(1.0);
    let mut meter = PowerMeter::new(&topology, 4).expect("positive history length");
    meter.record(Slot::ZERO, RackId::new(0), Watts::new(140.0));

    let operator = Operator::new(topology.clone(), OperatorConfig::default());
    let bids = vec![agent.make_bid().expect("bids at peak")];
    let round = operator.run_slot(Slot::new(1), &bids, &meter);
    let mut allocation = round.outcome.into_allocation();
    assert!(allocation.total() > Watts::ZERO);

    // Every broadcast lost: the grant is revoked.
    let comms = CommsModel::new(0.0, 1.0, 9);
    let events = comms.deliver_broadcasts(&topology, &mut allocation, [TenantId::new(0)]);
    assert_eq!(events.len(), 1);
    assert_eq!(allocation.total(), Watts::ZERO);

    // The tenant simply runs at its guaranteed capacity.
    let bank = RackPduBank::new(&topology);
    assert_eq!(bank.budget(RackId::new(0)), Watts::new(145.0));
}

/// The MaxPerf allocator and the market operate on the same constraint
/// set and neither violates it.
#[test]
fn maxperf_and_market_share_constraints() {
    use spotdc::market::{max_perf_allocate, ConcaveGain};
    use std::collections::BTreeMap;

    let topology = TopologyBuilder::new(Watts::new(400.0))
        .pdu(Watts::new(400.0))
        .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
        .rack(TenantId::new(1), Watts::new(100.0), Watts::new(50.0))
        .build()
        .expect("valid topology");
    let constraints = ConstraintSet::new(&topology, vec![Watts::new(60.0)], Watts::new(60.0));

    let gains: BTreeMap<RackId, ConcaveGain> = [
        (
            RackId::new(0),
            ConcaveGain::new(vec![(50.0, 0.002)]).expect("valid"),
        ),
        (
            RackId::new(1),
            ConcaveGain::new(vec![(50.0, 0.001)]).expect("valid"),
        ),
    ]
    .into_iter()
    .collect();
    let grants = max_perf_allocate(&gains, &constraints);
    assert!(constraints.is_feasible(&grants));
    let total: Watts = grants.values().copied().sum();
    assert!(
        total.approx_eq(Watts::new(60.0), 1e-9),
        "greedy saturates supply"
    );

    let bids = vec![
        RackBid::new(
            RackId::new(0),
            StepBid::new(Watts::new(50.0), Price::per_kw_hour(0.3))
                .expect("valid")
                .into(),
        ),
        RackBid::new(
            RackId::new(1),
            StepBid::new(Watts::new(50.0), Price::per_kw_hour(0.1))
                .expect("valid")
                .into(),
        ),
    ];
    let outcome = MarketClearing::default().clear(Slot::ZERO, &bids, &constraints);
    assert!(constraints.is_feasible(outcome.allocation().grants()));
    // Serving both (100 W) is infeasible; the market prices out the
    // cheaper bid rather than violating the PDU limit.
    assert_eq!(outcome.allocation().grant(RackId::new(1)), Watts::ZERO);
    assert_eq!(outcome.allocation().grant(RackId::new(0)), Watts::new(50.0));
}
