//! Workload, power–performance and cost models for SpotDC tenants.
//!
//! To bid for spot capacity a tenant must know what an extra watt is
//! worth. The paper's testbed measures this directly (Fig. 8/9: run
//! CloudSuite Search, Web Serving, Hadoop and PowerGraph at different
//! power caps and workload intensities, then price the performance
//! delta). This crate reproduces the same pipeline analytically:
//!
//! 1. [`dvfs`] — how a power cap maps to a CPU frequency, and frequency
//!    to service speed;
//! 2. [`queueing`] — how service speed and load map to tail latency for
//!    interactive workloads;
//! 3. [`interactive`] / [`batch`] — workload models for the two tenant
//!    classes (*sprinting* = latency SLO, *opportunistic* = throughput);
//! 4. [`cost`] — Section IV-C's dollar cost models (linear below the
//!    SLO, quadratic above; linear in completion time for batch);
//! 5. [`gain`] — the resulting "performance gain in $ per hour of spot
//!    capacity" curves that drive bidding, `FullBid` and `MaxPerf`.
//!
//! ```
//! use spotdc_workloads::interactive::InteractiveWorkload;
//! use spotdc_units::Watts;
//!
//! let search = InteractiveWorkload::search_tenant();
//! let lo = search.latency(search.peak_load(), Watts::new(145.0));
//! let hi = search.latency(search.peak_load(), Watts::new(200.0));
//! assert!(hi < lo, "more power must not worsen latency");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cost;
pub mod dvfs;
pub mod gain;
pub mod interactive;
pub mod queueing;

pub use batch::BatchWorkload;
pub use cost::{OpportunisticCost, SprintingCost};
pub use dvfs::DvfsModel;
pub use gain::GainCurve;
pub use interactive::InteractiveWorkload;
pub use queueing::{Mg1, MmK};

/// A workload's dollar-denominated running cost as a function of its
/// rack power budget, at some fixed load level.
///
/// Implemented by [`InteractiveWorkload`] (paired with [`SprintingCost`])
/// and [`BatchWorkload`] (paired with [`OpportunisticCost`]) through the
/// concrete `cost_rate` methods; [`GainCurve`] consumes any
/// `Fn(Watts) -> f64` so custom models can be plugged in too.
pub trait PowerCost {
    /// The cost rate in $/hour when running with `budget` watts.
    fn cost_rate(&self, budget: spotdc_units::Watts) -> f64;
}
