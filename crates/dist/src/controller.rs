//! The controller's side of the split: session bookkeeping, delta
//! shipping, dispatching slot frames across shard agents and merging
//! replies deterministically.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use spotdc_core::{
    ClearResult, ClearTask, ClearingCacheStats, ClearingConfig, ConcaveGain, ConstraintSet,
    DemandBid, RackBid, TaskShip, WireMsg,
};
use spotdc_telemetry::Event;
use spotdc_units::{MonotonicNanos, RackId, Slot, Watts};

use crate::transport::{agent_binary, InProcTransport, ShardTransport, SubprocessTransport};
use crate::TransportKind;

/// How many times a dead shard may be respawned before its tasks
/// degrade permanently. Respawns happen at the next dispatch, never
/// mid-slot: the slot that observed the death still degrades (the
/// paper's comms-loss rule), and the replacement resyncs in full.
const RESPAWN_BUDGET: u32 = 3;

// Process-wide wire accounting, relaxed-atomic like the PR 1 telemetry
// fast path: sends and receives bump these unconditionally (cheap
// enough for the hot path), and benchmarks snapshot-diff them around
// runs. Per-slot *event* emission uses the runtime-local tally instead,
// so one `ShardRpc` event per slot carries exact per-slot numbers.
static FRAMES_SENT: AtomicU64 = AtomicU64::new(0);
static FRAMES_RECV: AtomicU64 = AtomicU64::new(0);
static BYTES_SENT: AtomicU64 = AtomicU64::new(0);
static BYTES_RECV: AtomicU64 = AtomicU64::new(0);
static SETUP_FRAMES: AtomicU64 = AtomicU64::new(0);
static SETUP_BYTES: AtomicU64 = AtomicU64::new(0);
static DELTA_TASKS: AtomicU64 = AtomicU64::new(0);
static FULL_TASKS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide wire counters (see [`wire_totals`]).
/// Setup traffic (the `AssignShard` handshake) is tallied separately
/// and excluded from the per-slot frame/byte counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Slot frames sent controller → agents.
    pub frames_sent: u64,
    /// Frames received back from agents.
    pub frames_recv: u64,
    /// Bytes sent controller → agents in slot frames.
    pub bytes_sent: u64,
    /// Bytes received back from agents.
    pub bytes_recv: u64,
    /// Handshake (`AssignShard`) frames sent at setup/respawn.
    pub setup_frames: u64,
    /// Handshake bytes sent at setup/respawn.
    pub setup_bytes: u64,
    /// Session tasks shipped as deltas.
    pub delta_tasks: u64,
    /// Session tasks shipped in full (standalone tasks included).
    pub full_tasks: u64,
}

/// Snapshots the process-wide wire counters. Counters only ever grow;
/// callers measuring one run diff two snapshots.
#[must_use]
pub fn wire_totals() -> WireStats {
    WireStats {
        frames_sent: FRAMES_SENT.load(Ordering::Relaxed),
        frames_recv: FRAMES_RECV.load(Ordering::Relaxed),
        bytes_sent: BYTES_SENT.load(Ordering::Relaxed),
        bytes_recv: BYTES_RECV.load(Ordering::Relaxed),
        setup_frames: SETUP_FRAMES.load(Ordering::Relaxed),
        setup_bytes: SETUP_BYTES.load(Ordering::Relaxed),
        delta_tasks: DELTA_TASKS.load(Ordering::Relaxed),
        full_tasks: FULL_TASKS.load(Ordering::Relaxed),
    }
}

/// One session-typed unit of work for [`ShardRuntime::clear_session`]:
/// the task's bids/gains plus its UPS spot share, cleared against the
/// slot's shared constraint set (statics + per-PDU spot vector). The
/// runtime decides per task whether to ship it whole or as a delta
/// against what the owning shard already holds.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionTask {
    /// A (sub-)market of rack bids.
    Market {
        /// The bids, in controller order.
        bids: Vec<RackBid>,
        /// The task's UPS spot share (already clamped to the global).
        ups_spot: Watts,
    },
    /// A MaxPerf water-filling allocation.
    MaxPerf {
        /// Concave gain envelope per requesting rack.
        gains: BTreeMap<RackId, ConcaveGain>,
        /// The task's UPS spot share (already clamped to the global).
        ups_spot: Watts,
    },
}

/// The controller's mirror of what a shard holds per task position —
/// exactly the state the shard would have after applying every accepted
/// frame, which is what deltas are diffed against and what a full
/// resync frame is rebuilt from. UPS shares are kept as raw `f64` bits:
/// all diffing is bitwise (`-0.0 != 0.0`), matching the wire codec's
/// exact round-trip.
#[derive(Debug)]
enum MirrorTask {
    /// A market task's full bid book plus its last UPS share.
    Market { ups_bits: u64, bids: Vec<RackBid> },
    /// A MaxPerf task's gain envelopes plus its last UPS share.
    MaxPerf {
        ups_bits: u64,
        gains: BTreeMap<RackId, ConcaveGain>,
    },
    /// A standalone [`ClearTask`] traveled here; nothing is mirrored
    /// and the position cannot be resynced from controller state.
    Opaque,
}

/// Per-slot wire tally, reset every dispatch; feeds the one aggregated
/// `ShardRpc` event per slot.
#[derive(Debug, Default, Clone, Copy)]
struct FrameTally {
    frames_sent: u64,
    frames_recv: u64,
    bytes_sent: u64,
    bytes_recv: u64,
    delta_tasks: u64,
    full_tasks: u64,
}

/// The controller's handle on a fleet of shard agents.
///
/// Tasks are assigned round-robin (`task i → shard i % shard_count`),
/// each shard gets its whole slot as **one frame** so agents overlap,
/// and replies are consumed strictly in shard order — a serial in-order
/// merge, which is what keeps reports byte-identical regardless of how
/// many shards run or how fast each one answers.
///
/// [`Self::clear_session`] is the hot path: the runtime mirrors every
/// shard's held state, ships statics once per resync and per-task bid
/// deltas afterwards, and falls back to full shipping whenever a shard
/// answers `ResyncNeeded` (fresh restart, epoch gap) — by construction
/// the replayed state is bit-identical to full shipping, so the merge
/// bytes never depend on which path ran. [`Self::clear_tasks`] remains
/// the generic escape hatch for self-contained tasks with heterogeneous
/// constraints.
///
/// A shard whose transport fails — send error, torn or corrupt frame,
/// short or mismatched reply, dead process — is marked dead; its tasks
/// come back as `None` for that slot and the caller degrades those
/// sub-markets to "no spot capacity" (the paper's comms-loss rule). At
/// the *next* dispatch the runtime respawns the shard (bounded by a
/// small budget) and resyncs it in full, so a transient agent crash
/// costs exactly the slots it was dead for.
#[derive(Debug)]
pub struct ShardRuntime {
    shards: Vec<ShardConn>,
    kind: TransportKind,
    clearing: ClearingConfig,
    /// The agent binary resolved at startup, so respawns use the same
    /// executable even if `SPOTDC_AGENT_BIN` changes mid-run.
    binary: Option<PathBuf>,
    /// The static constraint layers the current shard sessions were
    /// synced with; a bitwise mismatch forces a full resync everywhere.
    statics: Option<ConstraintSet>,
}

#[derive(Debug)]
struct ShardConn {
    transport: Box<dyn ShardTransport>,
    alive: bool,
    /// Whether the shard's session holds the current statics — cleared
    /// on death, respawn, and statics change; set when a full frame is
    /// shipped.
    synced: bool,
    /// Epoch of the last frame sent to this shard.
    epoch: u64,
    respawns_left: u32,
    mirror: Vec<MirrorTask>,
    /// The shard's last reported clearing-cache counters.
    cache: ClearingCacheStats,
}

impl ShardRuntime {
    /// Starts `count` shard agents over `kind` transports and assigns
    /// each its shard index and the clearing configuration.
    ///
    /// # Errors
    ///
    /// Subprocess transport only: the `spotdc-agent` binary was not
    /// found (see [`agent_binary`]) or failed to spawn. In-process
    /// startup is infallible.
    ///
    /// # Panics
    ///
    /// If `count` is zero.
    pub fn new(count: usize, kind: TransportKind, clearing: ClearingConfig) -> io::Result<Self> {
        assert!(count > 0, "a shard runtime needs at least one shard");
        let _span = spotdc_telemetry::span!("dist.start", shards = count);
        let binary = match kind {
            TransportKind::InProc => None,
            TransportKind::Subprocess => Some(agent_binary().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    "spotdc-agent binary not found: set SPOTDC_AGENT_BIN or \
                     build it next to the current executable",
                )
            })?),
        };
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            shards.push(ShardConn {
                transport: spawn_transport(kind, binary.as_deref())?,
                alive: true,
                synced: false,
                epoch: 0,
                respawns_left: RESPAWN_BUDGET,
                mirror: Vec::new(),
                cache: ClearingCacheStats::default(),
            });
        }
        let mut runtime = ShardRuntime {
            shards,
            kind,
            clearing,
            binary,
            statics: None,
        };
        for id in 0..count {
            runtime.assign(Slot::ZERO, id);
        }
        Ok(runtime)
    }

    /// The number of shards in the topology (dead ones included — the
    /// task assignment never re-balances, so degradation stays local to
    /// the failed shard).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The transport the runtime was started with.
    #[must_use]
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// How many shards are still serving.
    #[must_use]
    pub fn live_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.alive).count()
    }

    /// Each shard's last reported clearing-cache counters, in shard
    /// order. Warm sessions show `cache_hits`/`delta_sweeps` climbing
    /// exactly like a local engine's.
    #[must_use]
    pub fn shard_cache_stats(&self) -> Vec<ClearingCacheStats> {
        self.shards.iter().map(|s| s.cache).collect()
    }

    /// The OS pid of each shard's agent process, in shard order (`None`
    /// for in-process shards). The fault-injection harnesses kill
    /// agents by pid to exercise degradation and resync.
    #[must_use]
    pub fn agent_pids(&self) -> Vec<Option<u32>> {
        self.shards.iter().map(|s| s.transport.pid()).collect()
    }

    /// Dispatches one slot of session tasks across the shards and
    /// returns one entry per task, in task order: `Some(result)` from a
    /// healthy shard, `None` for every task owned by a dead one.
    ///
    /// `constraints` is the slot's global constraint set; each task's
    /// `ups_spot` replaces its UPS capacity shard-side, exactly like
    /// `constraints.clone().with_ups_spot(share)` locally. The runtime
    /// ships the static layers only when a shard needs a (re)sync and
    /// diffs each task against its mirror of the shard's held state to
    /// ship deltas, so steady-state wire volume is proportional to bid
    /// churn, not book size.
    pub fn clear_session(
        &mut self,
        slot: Slot,
        constraints: &ConstraintSet,
        tasks: Vec<SessionTask>,
    ) -> Vec<Option<ClearResult>> {
        let _span = spotdc_telemetry::span!("dist.clear", slot = slot);
        let statics_changed = match &self.statics {
            Some(held) => !held.same_statics(constraints),
            None => true,
        };
        if statics_changed {
            self.statics = Some(constraints.clone());
            for conn in &mut self.shards {
                conn.synced = false;
            }
        }
        self.respawn_dead(slot);
        let count = self.shards.len();
        let total = tasks.len();
        let pdu_spot: Vec<Watts> = constraints.pdu_spots().to_vec();
        let mut per_shard: Vec<Vec<SessionTask>> = (0..count).map(|_| Vec::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            per_shard[i % count].push(task);
        }
        let expected: Vec<usize> = per_shard.iter().map(Vec::len).collect();
        let started = Instant::now();
        let mut tally = FrameTally::default();
        // Send phase: one coalesced frame per live shard, so the shards
        // compute concurrently.
        for (idx, batch) in per_shard.into_iter().enumerate() {
            let frame = self.build_frame(idx, slot, &pdu_spot, batch, &mut tally);
            self.send_slot(idx, &frame, &mut tally);
        }
        // Receive phase: strictly in shard order, so the merge below is
        // serial and deterministic no matter who finished first.
        let mut replies: Vec<Option<std::vec::IntoIter<ClearResult>>> = Vec::with_capacity(count);
        for (idx, &expected) in expected.iter().enumerate() {
            replies.push(self.recv_cleared(slot, idx, expected, &pdu_spot, started, &mut tally));
        }
        self.finish_slot(slot, tally);
        // Stitch per-shard replies back into task order.
        let mut out = Vec::with_capacity(total);
        for i in 0..total {
            out.push(replies[i % count].as_mut().and_then(Iterator::next));
        }
        out
    }

    /// Dispatches one slot of self-contained [`ClearTask`]s across the
    /// shards — the generic escape hatch for callers whose tasks carry
    /// heterogeneous constraint sets. Ships everything standalone (no
    /// session state, no deltas); returns one entry per task, in task
    /// order, `None` for tasks owned by dead shards.
    pub fn clear_tasks(&mut self, slot: Slot, tasks: Vec<ClearTask>) -> Vec<Option<ClearResult>> {
        let _span = spotdc_telemetry::span!("dist.clear", slot = slot);
        self.respawn_dead(slot);
        let count = self.shards.len();
        let total = tasks.len();
        let mut per_shard: Vec<Vec<ClearTask>> = (0..count).map(|_| Vec::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            per_shard[i % count].push(task);
        }
        let expected: Vec<usize> = per_shard.iter().map(Vec::len).collect();
        let started = Instant::now();
        let mut tally = FrameTally::default();
        for (idx, batch) in per_shard.into_iter().enumerate() {
            let conn = &mut self.shards[idx];
            conn.epoch += 1;
            conn.mirror = batch.iter().map(|_| MirrorTask::Opaque).collect();
            tally.full_tasks += batch.len() as u64;
            FULL_TASKS.fetch_add(batch.len() as u64, Ordering::Relaxed);
            let frame = WireMsg::SlotFrame {
                slot,
                epoch: conn.epoch,
                statics: None,
                pdu_spot: Vec::new(),
                tasks: batch.into_iter().map(TaskShip::Standalone).collect(),
            };
            self.send_slot(idx, &frame, &mut tally);
        }
        let mut replies: Vec<Option<std::vec::IntoIter<ClearResult>>> = Vec::with_capacity(count);
        for (idx, &expected) in expected.iter().enumerate() {
            replies.push(self.recv_cleared(slot, idx, expected, &[], started, &mut tally));
        }
        self.finish_slot(slot, tally);
        let mut out = Vec::with_capacity(total);
        for i in 0..total {
            out.push(replies[i % count].as_mut().and_then(Iterator::next));
        }
        out
    }

    /// Builds shard `idx`'s frame for the slot, updating its mirror to
    /// the post-frame state. Synced shards get deltas where the churn
    /// pays for itself; unsynced shards get a statics-bearing full
    /// frame (and are considered synced once it ships).
    fn build_frame(
        &mut self,
        idx: usize,
        slot: Slot,
        pdu_spot: &[Watts],
        batch: Vec<SessionTask>,
        tally: &mut FrameTally,
    ) -> WireMsg {
        let conn = &mut self.shards[idx];
        conn.epoch += 1;
        let full = !conn.synced;
        let mut ships = Vec::with_capacity(batch.len());
        let mut mirror = Vec::with_capacity(batch.len());
        for (j, task) in batch.into_iter().enumerate() {
            let old = if full { None } else { conn.mirror.get(j) };
            match task {
                SessionTask::Market { bids, ups_spot } => {
                    ships.push(market_ship(old, &bids, ups_spot));
                    mirror.push(MirrorTask::Market {
                        ups_bits: ups_spot.value().to_bits(),
                        bids,
                    });
                }
                SessionTask::MaxPerf { gains, ups_spot } => {
                    ships.push(maxperf_ship(old, &gains, ups_spot));
                    mirror.push(MirrorTask::MaxPerf {
                        ups_bits: ups_spot.value().to_bits(),
                        gains,
                    });
                }
            }
        }
        conn.mirror = mirror;
        for ship in &ships {
            tally_ship(ship, tally);
        }
        let statics = if full {
            conn.synced = true;
            Some(self.statics.clone().expect("set by clear_session"))
        } else {
            None
        };
        WireMsg::SlotFrame {
            slot,
            epoch: conn.epoch,
            statics,
            pdu_spot: pdu_spot.to_vec(),
            tasks: ships,
        }
    }

    /// Rebuilds shard `idx`'s slot as a full statics-bearing frame from
    /// its mirror — the resync path after a `ResyncNeeded` reply.
    /// Returns `None` if the mirror holds standalone (opaque) tasks or
    /// no session statics exist, in which case the shard cannot be
    /// resynced mid-slot and is degraded instead.
    fn resync_frame(
        &mut self,
        idx: usize,
        slot: Slot,
        pdu_spot: &[Watts],
        tally: &mut FrameTally,
    ) -> Option<WireMsg> {
        let statics = self.statics.clone()?;
        let conn = &mut self.shards[idx];
        let mut ships = Vec::with_capacity(conn.mirror.len());
        for entry in &conn.mirror {
            ships.push(match entry {
                MirrorTask::Market { ups_bits, bids } => TaskShip::MarketFull {
                    ups_spot: Watts::new(f64::from_bits(*ups_bits)),
                    bids: bids.clone(),
                },
                MirrorTask::MaxPerf { ups_bits, gains } => TaskShip::MaxPerfFull {
                    ups_spot: Watts::new(f64::from_bits(*ups_bits)),
                    gains: gains.clone(),
                },
                MirrorTask::Opaque => return None,
            });
        }
        conn.epoch += 1;
        conn.synced = true;
        for ship in &ships {
            tally_ship(ship, tally);
        }
        Some(WireMsg::SlotFrame {
            slot,
            epoch: conn.epoch,
            statics: Some(statics),
            pdu_spot: pdu_spot.to_vec(),
            tasks: ships,
        })
    }

    /// Respawns dead shards that still have respawn budget. Called at
    /// the top of every dispatch — never mid-slot, so the slot that
    /// watched a shard die degrades deterministically and the
    /// replacement starts clean at the next one.
    fn respawn_dead(&mut self, slot: Slot) {
        for idx in 0..self.shards.len() {
            let conn = &mut self.shards[idx];
            if conn.alive || conn.respawns_left == 0 {
                continue;
            }
            conn.respawns_left -= 1;
            let Ok(transport) = spawn_transport(self.kind, self.binary.as_deref()) else {
                continue;
            };
            conn.transport = transport;
            conn.alive = true;
            conn.synced = false;
            conn.epoch = 0;
            conn.mirror = Vec::new();
            self.assign(slot, idx);
        }
    }

    /// Sends the `AssignShard` handshake to shard `idx`, accounting it
    /// as setup traffic (its own `ShardRpc` phase, excluded from
    /// per-slot tallies).
    fn assign(&mut self, slot: Slot, idx: usize) {
        let msg = WireMsg::AssignShard {
            shard: idx as u64,
            shard_count: self.shards.len() as u64,
            clearing: self.clearing,
        };
        let conn = &mut self.shards[idx];
        match conn.transport.send(&msg) {
            Ok(bytes) => {
                SETUP_FRAMES.fetch_add(1, Ordering::Relaxed);
                SETUP_BYTES.fetch_add(bytes, Ordering::Relaxed);
                if spotdc_telemetry::is_enabled() {
                    spotdc_telemetry::emit(Event::ShardRpc {
                        slot,
                        at: MonotonicNanos::now(),
                        phase: "setup".to_owned(),
                        frames_sent: 1,
                        frames_recv: 0,
                        bytes_sent: bytes,
                        bytes_recv: 0,
                        delta_tasks: 0,
                        full_tasks: 0,
                    });
                }
            }
            Err(_) => {
                conn.alive = false;
                conn.synced = false;
            }
        }
    }

    /// Sends a slot frame to shard `idx`, marking it dead on failure.
    /// Returns whether the send succeeded.
    fn send_slot(&mut self, idx: usize, msg: &WireMsg, tally: &mut FrameTally) -> bool {
        let conn = &mut self.shards[idx];
        if !conn.alive {
            return false;
        }
        match conn.transport.send(msg) {
            Ok(bytes) => {
                tally.frames_sent += 1;
                tally.bytes_sent += bytes;
                FRAMES_SENT.fetch_add(1, Ordering::Relaxed);
                BYTES_SENT.fetch_add(bytes, Ordering::Relaxed);
                true
            }
            Err(_) => {
                conn.alive = false;
                conn.synced = false;
                false
            }
        }
    }

    /// Receives one reply from shard `idx`, accounting the bytes.
    /// Returns `None` (and kills the shard) on transport failure.
    fn recv_reply(&mut self, idx: usize, tally: &mut FrameTally) -> Option<WireMsg> {
        match self.shards[idx].transport.recv() {
            Ok((msg, bytes)) => {
                tally.frames_recv += 1;
                tally.bytes_recv += bytes;
                FRAMES_RECV.fetch_add(1, Ordering::Relaxed);
                BYTES_RECV.fetch_add(bytes, Ordering::Relaxed);
                Some(msg)
            }
            Err(_) => {
                self.kill(idx);
                None
            }
        }
    }

    /// Receives shard `idx`'s reply for `slot`. A `ResyncNeeded` reply
    /// gets one full-frame retry; anything else but a well-formed
    /// `ShardCleared` for the right slot and epoch with one result per
    /// task kills the shard.
    fn recv_cleared(
        &mut self,
        slot: Slot,
        idx: usize,
        expected: usize,
        pdu_spot: &[Watts],
        started: Instant,
        tally: &mut FrameTally,
    ) -> Option<std::vec::IntoIter<ClearResult>> {
        if !self.shards[idx].alive {
            return None;
        }
        let reply = self.recv_reply(idx, tally)?;
        let reply = if matches!(reply, WireMsg::ResyncNeeded { .. }) {
            let Some(frame) = self.resync_frame(idx, slot, pdu_spot, tally) else {
                self.kill(idx);
                return None;
            };
            if !self.send_slot(idx, &frame, tally) {
                return None;
            }
            self.recv_reply(idx, tally)?
        } else {
            reply
        };
        match reply {
            WireMsg::ShardCleared {
                slot: reply_slot,
                epoch,
                results,
                cache,
            } if reply_slot == slot
                && epoch == self.shards[idx].epoch
                && results.len() == expected =>
            {
                self.shards[idx].cache = cache;
                if spotdc_telemetry::is_enabled() {
                    spotdc_telemetry::emit(Event::ShardCleared {
                        slot,
                        at: MonotonicNanos::now(),
                        shard: idx as u64,
                        outcomes: results.len() as u64,
                        nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    });
                }
                Some(results.into_iter())
            }
            _ => {
                self.kill(idx);
                None
            }
        }
    }

    fn kill(&mut self, idx: usize) {
        self.shards[idx].alive = false;
        self.shards[idx].synced = false;
    }

    /// Emits the slot's one aggregated `ShardRpc` event.
    fn finish_slot(&mut self, slot: Slot, tally: FrameTally) {
        DELTA_TASKS.fetch_add(tally.delta_tasks, Ordering::Relaxed);
        FULL_TASKS.fetch_add(tally.full_tasks, Ordering::Relaxed);
        if spotdc_telemetry::is_enabled() {
            spotdc_telemetry::emit(Event::ShardRpc {
                slot,
                at: MonotonicNanos::now(),
                phase: "slot".to_owned(),
                frames_sent: tally.frames_sent,
                frames_recv: tally.frames_recv,
                bytes_sent: tally.bytes_sent,
                bytes_recv: tally.bytes_recv,
                delta_tasks: tally.delta_tasks,
                full_tasks: tally.full_tasks,
            });
        }
    }
}

fn spawn_transport(
    kind: TransportKind,
    binary: Option<&Path>,
) -> io::Result<Box<dyn ShardTransport>> {
    Ok(match kind {
        TransportKind::InProc => Box::new(InProcTransport::spawn()),
        TransportKind::Subprocess => {
            let binary = binary.ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, "no agent binary resolved")
            })?;
            Box::new(SubprocessTransport::spawn(binary)?)
        }
    })
}

fn tally_ship(ship: &TaskShip, tally: &mut FrameTally) {
    match ship {
        TaskShip::MarketDelta { .. } | TaskShip::MaxPerfDelta { .. } => tally.delta_tasks += 1,
        TaskShip::Standalone(_) | TaskShip::MarketFull { .. } | TaskShip::MaxPerfFull { .. } => {
            tally.full_tasks += 1;
        }
    }
}

/// Picks the cheapest correct shipment for a market task: a delta
/// against the shard's held book when strictly fewer bids travel than a
/// full shipment would carry, full otherwise (kind mismatch, opaque
/// position, or churn that makes the delta pointless).
fn market_ship(old: Option<&MirrorTask>, bids: &[RackBid], ups_spot: Watts) -> TaskShip {
    if let Some(MirrorTask::Market { bids: held, .. }) = old {
        let truncate_to = bids.len().min(held.len());
        let mut changed = Vec::new();
        for pos in 0..truncate_to {
            if !same_bid(&held[pos], &bids[pos]) {
                changed.push((pos as u64, bids[pos].clone()));
            }
        }
        let appended = &bids[truncate_to..];
        let removed = held.len().saturating_sub(bids.len());
        if changed.len() + appended.len() + removed < bids.len() {
            return TaskShip::MarketDelta {
                ups_spot,
                truncate_to: truncate_to as u64,
                changed,
                appended: appended.to_vec(),
            };
        }
    }
    TaskShip::MarketFull {
        ups_spot,
        bids: bids.to_vec(),
    }
}

/// Like [`market_ship`] for MaxPerf tasks: gains unchanged → only the
/// share travels; anything else → full shipment.
fn maxperf_ship(
    old: Option<&MirrorTask>,
    gains: &BTreeMap<RackId, ConcaveGain>,
    ups_spot: Watts,
) -> TaskShip {
    if let Some(MirrorTask::MaxPerf { gains: held, .. }) = old {
        if same_gains(held, gains) {
            return TaskShip::MaxPerfDelta { ups_spot };
        }
    }
    TaskShip::MaxPerfFull {
        ups_spot,
        gains: gains.clone(),
    }
}

// Bitwise equality for everything diffed against the mirror. `f64` bits
// (never `PartialEq`): `-0.0 != 0.0` here, exactly as on the wire, so a
// "same" verdict always means the shard-held bytes already match.
fn bits(v: f64) -> u64 {
    v.to_bits()
}

fn same_bid(a: &RackBid, b: &RackBid) -> bool {
    a.rack() == b.rack() && same_demand(a.demand(), b.demand())
}

fn same_demand(a: &DemandBid, b: &DemandBid) -> bool {
    match (a, b) {
        (DemandBid::Linear(x), DemandBid::Linear(y)) => {
            bits(x.d_max().value()) == bits(y.d_max().value())
                && bits(x.q_min().per_kw_hour_value()) == bits(y.q_min().per_kw_hour_value())
                && bits(x.d_min().value()) == bits(y.d_min().value())
                && bits(x.q_max().per_kw_hour_value()) == bits(y.q_max().per_kw_hour_value())
        }
        (DemandBid::Step(x), DemandBid::Step(y)) => {
            bits(x.demand().value()) == bits(y.demand().value())
                && bits(x.price_cap().per_kw_hour_value())
                    == bits(y.price_cap().per_kw_hour_value())
        }
        (DemandBid::Full(x), DemandBid::Full(y)) => {
            x.points().len() == y.points().len()
                && x.points().iter().zip(y.points()).all(|(p, q)| {
                    bits(p.0.per_kw_hour_value()) == bits(q.0.per_kw_hour_value())
                        && bits(p.1.value()) == bits(q.1.value())
                })
        }
        _ => false,
    }
}

fn same_gains(a: &BTreeMap<RackId, ConcaveGain>, b: &BTreeMap<RackId, ConcaveGain>) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((ra, ga), (rb, gb))| {
            ra == rb
                && ga.segments().len() == gb.segments().len()
                && ga
                    .segments()
                    .iter()
                    .zip(gb.segments())
                    .all(|(x, y)| bits(x.0) == bits(y.0) && bits(x.1) == bits(y.1))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotdc_core::{ConstraintSet, LinearBid, MarketClearing, RackBid, StepBid};
    use spotdc_power::topology::TopologyBuilder;
    use spotdc_units::{Price, RackId, TenantId, Watts};

    fn constraints() -> ConstraintSet {
        let topo = TopologyBuilder::new(Watts::new(400.0))
            .pdu(Watts::new(200.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
            .rack(TenantId::new(1), Watts::new(80.0), Watts::new(40.0))
            .build()
            .unwrap();
        ConstraintSet::new(&topo, vec![Watts::new(60.0)], Watts::new(60.0))
    }

    fn tasks() -> Vec<ClearTask> {
        let constraints = constraints();
        vec![
            ClearTask::Market {
                bids: vec![RackBid::new(
                    RackId::new(0),
                    LinearBid::new(
                        Watts::new(40.0),
                        Price::per_kw_hour(0.05),
                        Watts::new(10.0),
                        Price::per_kw_hour(0.30),
                    )
                    .unwrap()
                    .into(),
                )],
                constraints: constraints.clone(),
            },
            ClearTask::Market {
                bids: vec![RackBid::new(
                    RackId::new(1),
                    StepBid::new(Watts::new(25.0), Price::per_kw_hour(0.2))
                        .unwrap()
                        .into(),
                )],
                constraints,
            },
        ]
    }

    #[test]
    fn inproc_runtime_matches_direct_clearing_for_any_width() {
        let slot = Slot::new(11);
        let direct = MarketClearing::new(ClearingConfig::default());
        let want: Vec<ClearResult> = tasks()
            .iter()
            .map(|t| {
                let ClearTask::Market { bids, constraints } = t else {
                    unreachable!()
                };
                ClearResult::Market(direct.clear(slot, bids, constraints))
            })
            .collect();
        for width in [1, 2, 3] {
            let mut runtime =
                ShardRuntime::new(width, TransportKind::InProc, ClearingConfig::default()).unwrap();
            assert_eq!(runtime.shard_count(), width);
            assert_eq!(runtime.live_shards(), width);
            let got: Vec<ClearResult> = runtime
                .clear_tasks(slot, tasks())
                .into_iter()
                .map(|r| r.expect("healthy shards answer every task"))
                .collect();
            assert_eq!(got, want, "width {width}");
        }
    }

    #[test]
    fn session_clearing_matches_direct_clearing_over_warm_slots() {
        // Per-PDU sub-markets, cleared as a session across several
        // slots with varying bids and capacities, must match the serial
        // engine bit for bit at every width — the resync (slot 0) and
        // delta (later slots) paths produce identical merges.
        let topo = TopologyBuilder::new(Watts::new(400.0))
            .pdu(Watts::new(200.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
            .rack(TenantId::new(1), Watts::new(80.0), Watts::new(40.0))
            .pdu(Watts::new(200.0))
            .rack(TenantId::new(2), Watts::new(90.0), Watts::new(45.0))
            .build()
            .unwrap();
        let direct = MarketClearing::new(ClearingConfig::default());
        for width in [1, 2, 3] {
            let mut runtime =
                ShardRuntime::new(width, TransportKind::InProc, ClearingConfig::default()).unwrap();
            for s in 0..5_u64 {
                let slot = Slot::new(s);
                let v = s as f64;
                let constraints = ConstraintSet::new(
                    &topo,
                    vec![Watts::new(60.0 + v), Watts::new(30.0 + 2.0 * v)],
                    Watts::new(70.0 - v),
                );
                // Rack 0's bid churns every slot; the others hold
                // still, so warm slots genuinely exercise deltas.
                let bids = vec![
                    RackBid::new(
                        RackId::new(0),
                        StepBid::new(Watts::new(20.0 + v), Price::per_kw_hour(0.2))
                            .unwrap()
                            .into(),
                    ),
                    RackBid::new(
                        RackId::new(1),
                        StepBid::new(Watts::new(15.0), Price::per_kw_hour(0.15))
                            .unwrap()
                            .into(),
                    ),
                    RackBid::new(
                        RackId::new(2),
                        StepBid::new(Watts::new(25.0), Price::per_kw_hour(0.25))
                            .unwrap()
                            .into(),
                    ),
                ];
                let shares = direct.per_pdu_submarket_shares(&bids, &constraints);
                let want: Vec<ClearResult> = shares
                    .iter()
                    .map(|(group, share)| {
                        ClearResult::Market(direct.clear(
                            slot,
                            group,
                            &constraints.clone().with_ups_spot(*share),
                        ))
                    })
                    .collect();
                let session_tasks: Vec<SessionTask> = shares
                    .into_iter()
                    .map(|(group, share)| SessionTask::Market {
                        bids: group,
                        ups_spot: share,
                    })
                    .collect();
                let got: Vec<ClearResult> = runtime
                    .clear_session(slot, &constraints, session_tasks)
                    .into_iter()
                    .map(|r| r.expect("healthy shards answer every task"))
                    .collect();
                assert_eq!(got, want, "width {width} slot {s}");
            }
            assert_eq!(runtime.live_shards(), width);
        }
    }

    #[test]
    fn empty_task_lists_are_fine() {
        let mut runtime =
            ShardRuntime::new(2, TransportKind::InProc, ClearingConfig::default()).unwrap();
        assert!(runtime.clear_tasks(Slot::new(0), Vec::new()).is_empty());
        assert!(runtime
            .clear_session(Slot::new(1), &constraints(), Vec::new())
            .is_empty());
        assert_eq!(runtime.live_shards(), 2);
    }

    #[test]
    fn delta_shipping_kicks_in_on_warm_slots() {
        let before = wire_totals();
        let mut runtime =
            ShardRuntime::new(1, TransportKind::InProc, ClearingConfig::default()).unwrap();
        let c = constraints();
        let bids = vec![
            RackBid::new(
                RackId::new(0),
                StepBid::new(Watts::new(20.0), Price::per_kw_hour(0.2))
                    .unwrap()
                    .into(),
            ),
            RackBid::new(
                RackId::new(1),
                StepBid::new(Watts::new(15.0), Price::per_kw_hour(0.15))
                    .unwrap()
                    .into(),
            ),
        ];
        for s in 0..3_u64 {
            let task = SessionTask::Market {
                bids: bids.clone(),
                ups_spot: Watts::new(50.0),
            };
            let out = runtime.clear_session(Slot::new(s), &c, vec![task]);
            assert!(out[0].is_some());
        }
        let after = wire_totals();
        // Slot 0 resyncs in full; the two identical warm slots ship as
        // (empty) deltas.
        assert_eq!(after.delta_tasks - before.delta_tasks, 2);
        assert!(after.full_tasks > before.full_tasks);
        assert_eq!(after.setup_frames - before.setup_frames, 1);
        let cache = runtime.shard_cache_stats();
        assert_eq!(cache.len(), 1);
        assert!(
            cache[0].cache_hits + cache[0].delta_sweeps > 0,
            "warm identical slots must hit the shard-side cache: {cache:?}"
        );
    }
}
