//! Offline no-op stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io. SpotDC only uses
//! serde in the form of `#[derive(Serialize, Deserialize)]` attributes
//! (wire formats are hand-rolled; see the JSONL sink in
//! `spotdc-telemetry`), so these derives merely accept the syntax —
//! including `#[serde(...)]` helper attributes — and emit no code.
//! Nothing in the workspace calls serde's traits, so no impls are
//! needed. When the real `serde` becomes available, deleting `vendor/`
//! and restoring the registry dependency restores full behaviour.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and its `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and its `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
