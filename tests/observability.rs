//! End-to-end tests for the observability layer: flight recorder,
//! trace analysis, and the live metrics scrape endpoint driving a real
//! simulation rather than hand-built event streams.
//!
//! Telemetry is process-global, so every test here takes the same
//! mutex; each one leaves telemetry disabled and the recorder channel
//! empty on the way out.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;

use spotdc_obs::{Analysis, BlackBoxConfig, FlightRecorder, MetricsServer, PIPELINE_STAGES};
use spotdc_sim::engine::{EngineConfig, Simulation};
use spotdc_sim::{Mode, Scenario};

static TELEMETRY_GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    TELEMETRY_GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `Scenario::testbed(42)` under MaxPerf crosses the pdu-1 breaker
/// around slot 325 of the one-day (720-slot) headline horizon; this is
/// the smallest fully deterministic emergency recipe the experiments
/// expose.
const EMERGENCY_SEED: u64 = 42;
const EMERGENCY_SLOTS: u64 = 720;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spotdc-obs-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale temp dir");
    }
    dir
}

#[test]
fn flight_recorder_and_trace_analysis_capture_a_real_emergency() {
    let _gate = gate();
    let dir = temp_dir("blackbox");

    spotdc_telemetry::install(spotdc_telemetry::TelemetryConfig::in_memory());
    let _ = spotdc_telemetry::memory_sink().take();
    let recorder = FlightRecorder::arm(&dir, BlackBoxConfig::enabled());

    let report = Simulation::new(
        Scenario::testbed(EMERGENCY_SEED),
        EngineConfig::new(Mode::MaxPerf),
    )
    .run(EMERGENCY_SLOTS);
    assert_eq!(report.records.len() as u64, EMERGENCY_SLOTS);
    // MaxPerf has no bidding or clearing-auction stages; two short
    // SpotDC runs (global and per-PDU pricing) fill in the rest of the
    // nine-stage pipeline for the coverage assertion below.
    let _ = Simulation::new(
        Scenario::testbed(EMERGENCY_SEED),
        EngineConfig::new(Mode::SpotDc),
    )
    .run(40);
    let _ = Simulation::new(
        Scenario::testbed(EMERGENCY_SEED),
        EngineConfig {
            per_pdu_pricing: true,
            ..EngineConfig::new(Mode::SpotDc)
        },
    )
    .run(40);
    spotdc_telemetry::flush();
    spotdc_telemetry::uninstall_recorder();
    let events = spotdc_telemetry::memory_sink().take();
    spotdc_telemetry::set_enabled(false);

    let emergencies: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, spotdc_telemetry::Event::EmergencyTriggered { .. }))
        .collect();
    assert!(
        !emergencies.is_empty(),
        "the MaxPerf testbed run must trip at least one emergency"
    );

    // The recorder must have written at least one black-box dump, and
    // the dump must parse back through the analysis layer with the
    // emergency flagged.
    let dumps = recorder.dumps();
    assert!(!dumps.is_empty(), "no black-box dump written to {dir:?}");
    assert_eq!(recorder.write_errors(), 0, "{:?}", recorder.first_error());
    let body = std::fs::read_to_string(&dumps[0]).expect("dump readable");
    let analysis = Analysis::from_jsonl(&body, None);
    assert!(analysis.malformed.is_empty(), "{:?}", analysis.malformed);
    assert!(analysis.has_anomalies(), "dump must contain the trigger");
    assert!(
        !analysis.emergency_slots.is_empty(),
        "dump must flag the emergency slot"
    );

    // The full in-memory stream, serialized as JSONL, must analyze to
    // per-stage latency for all nine pipeline stages plus every
    // emergency the simulation raised.
    let log: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
    let full = Analysis::from_jsonl(&log, None);
    for stage in PIPELINE_STAGES {
        assert!(
            full.stages.get(stage).is_some_and(|s| s.count > 0),
            "stage {stage} missing from analysis"
        );
    }
    assert_eq!(full.emergency_slots.len(), emergencies.len());

    // Determinism: analyzing the same log twice renders byte-identical
    // text and JSON.
    let again = Analysis::from_jsonl(&log, None);
    assert_eq!(full.render_text(), again.render_text());
    assert_eq!(full.render_json(), again.render_json());

    std::fs::remove_dir_all(&dir).ok();
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: spotdc\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn metrics_endpoint_serves_span_histograms_from_a_parallel_run() {
    let _gate = gate();

    spotdc_telemetry::install(spotdc_telemetry::TelemetryConfig {
        enabled: true,
        sink: spotdc_telemetry::SinkKind::Null,
        sample_every: 1,
    });
    // An inner pool wider than one worker exercises the par.* spans.
    let engine = EngineConfig {
        per_pdu_pricing: true,
        inner_jobs: 2,
        ..EngineConfig::new(Mode::SpotDc)
    };
    let _ = Simulation::new(Scenario::testbed(7), engine).run(40);
    spotdc_telemetry::set_enabled(false);

    let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();

    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
    assert!(
        metrics.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE spotdc_span_duration_seconds histogram"),
        "{metrics}"
    );
    for span in ["engine.slot", "stage.clear_market", "par.collect_bids"] {
        assert!(
            metrics.contains(&format!("span=\"{span}\"")),
            "missing span {span} in:\n{metrics}"
        );
    }

    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    let missing = http_get(addr, "/nope");
    assert!(
        missing.starts_with("HTTP/1.1 404 Not Found\r\n"),
        "{missing}"
    );

    server.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "server must stop listening after shutdown"
    );
}
