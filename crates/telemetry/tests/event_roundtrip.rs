//! Property test: the JSONL wire format round-trips every [`Event`]
//! variant exactly, tagged or not.
//!
//! `spotdc-trace` trusts `Event::from_jsonl_tagged` to reconstruct
//! whatever a `FileSink` or flight-recorder dump wrote; this pins that
//! trust down across all eleven variants with adversarial strings
//! (quotes, backslashes, newlines, control characters, non-ASCII) and
//! full-range numeric fields.

use proptest::prelude::*;
use spotdc_telemetry::Event;
use spotdc_units::{MonotonicNanos, Slot};

/// Strings drawn from an alphabet chosen to stress the escaper: JSON
/// metacharacters, whitespace escapes, a control character, and
/// multi-byte UTF-8. (The vendored proptest has no string strategies,
/// so build them from a character vector.)
fn text() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('3'),
            Just('-'),
            Just('_'),
            Just(' '),
            Just('"'),
            Just('\\'),
            Just('/'),
            Just('\n'),
            Just('\r'),
            Just('\t'),
            Just('\u{1}'),
            Just('µ'),
            Just('→'),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Finite non-negative magnitudes, the range telemetry fields carry.
fn magnitude() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), 0.0..2.0e7, 0.0..0.001]
}

fn base() -> impl Strategy<Value = (Slot, MonotonicNanos)> {
    (0u64..=u64::MAX, 0u64..=u64::MAX)
        .prop_map(|(slot, at)| (Slot::new(slot), MonotonicNanos::from_raw(at)))
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (
            base(),
            magnitude(),
            magnitude(),
            magnitude(),
            0u64..=u64::MAX
        )
            .prop_map(
                |((slot, at), price_per_kw_hour, sold_watts, revenue_rate_per_hour, candidates)| {
                    Event::SlotCleared {
                        slot,
                        at,
                        price_per_kw_hour,
                        sold_watts,
                        revenue_rate_per_hour,
                        candidates_evaluated: candidates,
                    }
                }
            ),
        (base(), magnitude(), magnitude(), 0u64..=64).prop_map(
            |((slot, at), ups_watts, pdu_total_watts, pdus)| Event::PredictionIssued {
                slot,
                at,
                ups_watts,
                pdu_total_watts,
                pdus,
            }
        ),
        (base(), text(), magnitude()).prop_map(|((slot, at), constraint, limit_watts)| {
            Event::ConstraintBound {
                slot,
                at,
                constraint,
                limit_watts,
            }
        }),
        (base(), text(), magnitude(), magnitude()).prop_map(
            |((slot, at), level, load_watts, capacity_watts)| Event::EmergencyTriggered {
                slot,
                at,
                level,
                load_watts,
                capacity_watts,
            }
        ),
        (base(), 0u64..=u64::MAX, 0u64..=48, text()).prop_map(
            |((slot, at), tenant, racks, reason)| Event::BidRejected {
                slot,
                at,
                tenant,
                racks,
                reason,
            }
        ),
        (base(), text(), text()).prop_map(|((slot, at), kind, target)| Event::FaultInjected {
            slot,
            at,
            kind,
            target,
        }),
        (base(), text(), text(), magnitude()).prop_map(|((slot, at), kind, detail, watts)| {
            Event::DegradedDecision {
                slot,
                at,
                kind,
                detail,
                watts,
            }
        }),
        (base(), text(), magnitude(), magnitude()).prop_map(
            |((slot, at), level, shed_watts, capped_watts)| Event::CapApplied {
                slot,
                at,
                level,
                shed_watts,
                capped_watts,
            }
        ),
        (base(), text()).prop_map(|((slot, at), violation)| Event::InvariantViolated {
            slot,
            at,
            violation,
        }),
        (base(), text(), 0u64..=u64::MAX).prop_map(|((slot, at), span, nanos)| {
            Event::SpanClosed {
                slot,
                at,
                span,
                nanos,
            }
        }),
        (base(), text(), 0u64..=u64::MAX, 0u64..=u64::MAX).prop_map(
            |((slot, at), mode, candidates_total, candidates_swept)| Event::ClearingCache {
                slot,
                at,
                mode,
                candidates_total,
                candidates_swept,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn untagged_round_trip_is_exact(event in event()) {
        let line = event.to_jsonl();
        prop_assert!(!line.contains('\n'), "JSONL must stay one line: {line:?}");
        let (run, back) = Event::from_jsonl_tagged(&line)
            .unwrap_or_else(|e| panic!("parse failed: {e}\nline: {line}"));
        prop_assert_eq!(run, None);
        prop_assert_eq!(back, event);
    }

    #[test]
    fn tagged_round_trip_recovers_run_and_event(event in event(), run in text()) {
        let line = event.to_jsonl_tagged(Some(&run));
        prop_assert!(!line.contains('\n'), "JSONL must stay one line: {line:?}");
        let (tag, back) = Event::from_jsonl_tagged(&line)
            .unwrap_or_else(|e| panic!("parse failed: {e}\nline: {line}"));
        prop_assert_eq!(tag.as_deref(), Some(run.as_str()));
        prop_assert_eq!(back, event);
    }
}
