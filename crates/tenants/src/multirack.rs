//! Bundled multi-rack bidding (Section III-B3, Fig. 4).
//!
//! When one application spans several racks (e.g. a three-tier web
//! service with each tier in its own rack), the racks' power budgets
//! *jointly* determine performance, so the tenant should bid a demand
//! **vector**. SpotDC keeps the solicitation cheap: the tenant picks
//! the optimal grant vectors at just two prices — `(D_max,1 … D_max,K)`
//! at `q_min` and `(D_min,1 … D_min,K)` at `q_max` — and the market
//! joins them affinely, moving every rack's grant along the same line
//! as the price moves. [`bundle_bid`] derives those corner vectors from
//! per-rack gain curves and emits the bundled [`TenantBid`].

use spotdc_core::bid::{BidError, RackBid, TenantBid};
use spotdc_core::demand::LinearBid;
use spotdc_units::{Price, RackId, TenantId, Watts};
use spotdc_workloads::GainCurve;

/// Builds a bundled multi-rack bid: for each `(rack, gain curve,
/// headroom)` triple, the demands at `q_min` and `q_max` are read off
/// the curve's concave envelope and joined as a [`LinearBid`], so all
/// racks share one price range and their grants move together.
///
/// Racks whose curve yields zero demand even at `q_min` are omitted.
///
/// # Errors
///
/// Returns [`BidError`] if `q_min > q_max`, a duplicate rack appears,
/// or every rack's demand is zero (nothing to bid).
///
/// # Examples
///
/// ```
/// use spotdc_tenants::bundle_bid;
/// use spotdc_units::{Price, RackId, TenantId, Watts};
/// use spotdc_workloads::GainCurve;
///
/// // Two racks; the back end gains twice as much per watt.
/// let front = GainCurve::from_samples([(30.0, 0.006)]);
/// let back = GainCurve::from_samples([(30.0, 0.012)]);
/// let bid = bundle_bid(
///     TenantId::new(0),
///     &[
///         (RackId::new(0), front, Watts::new(30.0)),
///         (RackId::new(1), back, Watts::new(30.0)),
///     ],
///     Price::per_kw_hour(0.05),
///     Price::per_kw_hour(0.25),
/// )?;
/// assert_eq!(bid.rack_bids().len(), 2);
/// # Ok::<(), spotdc_core::BidError>(())
/// ```
pub fn bundle_bid(
    tenant: TenantId,
    racks: &[(RackId, GainCurve, Watts)],
    q_min: Price,
    q_max: Price,
) -> Result<TenantBid, BidError> {
    if q_min > q_max {
        return Err(BidError::invalid("q_min must not exceed q_max"));
    }
    let mut rack_bids = Vec::with_capacity(racks.len());
    for (rack, gain, headroom) in racks {
        let env = gain.concave_envelope();
        let d_max = env.demand_at_price(q_min).min(*headroom);
        if d_max <= Watts::ZERO {
            continue;
        }
        let d_min = env.demand_at_price(q_max).min(d_max);
        rack_bids.push(RackBid::new(
            *rack,
            LinearBid::new(d_max, q_min, d_min, q_max)?.into(),
        ));
    }
    if rack_bids.is_empty() {
        return Err(BidError::invalid("no rack has positive spot demand"));
    }
    TenantBid::new(tenant, rack_bids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(watts: f64, slope: f64) -> GainCurve {
        // One linear segment: gain = slope · min(w, watts).
        GainCurve::from_samples([(watts, slope * watts)])
    }

    #[test]
    fn bundle_shares_the_price_range() {
        let bid = bundle_bid(
            TenantId::new(3),
            &[
                (RackId::new(0), curve(40.0, 0.0005), Watts::new(40.0)),
                (RackId::new(1), curve(20.0, 0.0004), Watts::new(20.0)),
            ],
            Price::per_kw_hour(0.05),
            Price::per_kw_hour(0.3),
        )
        .unwrap();
        assert_eq!(bid.rack_bids().len(), 2);
        for rb in bid.rack_bids() {
            assert_eq!(rb.demand().price_ceiling(), Price::per_kw_hour(0.3));
        }
    }

    #[test]
    fn grants_move_together_as_price_moves() {
        let bid = bundle_bid(
            TenantId::new(0),
            &[
                (RackId::new(0), curve(40.0, 0.0005), Watts::new(40.0)),
                (RackId::new(1), curve(40.0, 0.0005), Watts::new(40.0)),
            ],
            Price::per_kw_hour(0.0),
            Price::per_kw_hour(0.5),
        )
        .unwrap();
        // Symmetric racks: identical demand at every shared price.
        for q in [0.0, 0.1, 0.25, 0.4] {
            let p = Price::per_kw_hour(q);
            assert_eq!(
                bid.rack_bids()[0].demand_at(p),
                bid.rack_bids()[1].demand_at(p)
            );
        }
    }

    #[test]
    fn zero_demand_racks_are_dropped() {
        // Rack 1 has zero gain: never worth bidding for.
        let bid = bundle_bid(
            TenantId::new(0),
            &[
                (RackId::new(0), curve(40.0, 0.0005), Watts::new(40.0)),
                (RackId::new(1), curve(40.0, 0.0), Watts::new(40.0)),
            ],
            Price::per_kw_hour(0.01),
            Price::per_kw_hour(0.3),
        )
        .unwrap();
        assert_eq!(bid.rack_bids().len(), 1);
        assert_eq!(bid.rack_bids()[0].rack(), RackId::new(0));
    }

    #[test]
    fn all_zero_bundle_is_an_error() {
        let err = bundle_bid(
            TenantId::new(0),
            &[(RackId::new(0), curve(40.0, 0.0), Watts::new(40.0))],
            Price::per_kw_hour(0.01),
            Price::per_kw_hour(0.3),
        )
        .unwrap_err();
        assert!(err.to_string().contains("no rack"));
    }

    #[test]
    fn inverted_prices_rejected() {
        let err = bundle_bid(
            TenantId::new(0),
            &[(RackId::new(0), curve(40.0, 0.001), Watts::new(40.0))],
            Price::per_kw_hour(0.3),
            Price::per_kw_hour(0.1),
        )
        .unwrap_err();
        assert!(err.to_string().contains("q_min"));
    }

    #[test]
    fn headroom_caps_demand() {
        let bid = bundle_bid(
            TenantId::new(0),
            &[(RackId::new(0), curve(100.0, 0.001), Watts::new(30.0))],
            Price::ZERO,
            Price::per_kw_hour(0.5),
        )
        .unwrap();
        assert!(bid.rack_bids()[0].demand_at(Price::ZERO) <= Watts::new(30.0));
    }
}
