//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro                      # run everything at the default horizon
//! repro --exp fig12          # one experiment
//! repro --days 30 --seed 7   # longer horizon, different seed
//! repro --quick              # fast smoke pass
//! repro --jobs 4             # experiment-level parallelism (default: cores)
//! repro --inner-jobs 4       # within-slot parallelism (default: 1, serial)
//! repro --list-exps          # available experiment ids (alias: --list)
//! repro --out results/       # also write one .txt file per experiment
//! repro --telemetry t.jsonl  # record market events to a JSONL file
//! repro --blackbox dumps/    # flight recorder: black-box dumps on emergencies
//! repro --serve-metrics 127.0.0.1:9184   # live GET /metrics + /healthz
//! repro --bench-json b.json  # write per-experiment wall-clock timings
//! repro --validate           # per-slot invariant checks; violations fail the run
//! repro --quiet              # suppress progress output (errors remain)
//! ```
//!
//! Single durable run (the crash-harness entry point):
//!
//! ```text
//! repro --mode spotdc --slots 300 --checkpoint-dir ckpt/ --checkpoint-every 25
//! repro --mode spotdc --slots 300 --checkpoint-dir ckpt/ --resume
//! repro --mode spotdc --per-pdu --shards 4 --shard-transport subprocess
//! ```
//!
//! `--mode` switches from the experiment suite to one simulation whose
//! full report is rendered to stdout deterministically; recovery notes
//! go to stderr only, so a resumed run's stdout is byte-identical to an
//! uninterrupted one. `--slot-delay-ms` slows the slot loop so an
//! external killer (`scripts/crash_harness`) can SIGKILL at a chosen
//! slot.
//!
//! `--shards N` runs the clearing stage on N shard agents —
//! `--shard-transport inproc` (threads) or `subprocess` (`spotdc-agent`
//! children) — with the controller merging serially, so stdout stays
//! byte-identical to `--shards 1` for every shard count and transport
//! (`scripts/smoke_dist` enforces this). `--per-pdu` switches SpotDC to
//! per-PDU sub-market pricing, which is where sharding actually fans
//! out.
//!
//! Experiments fan out across `--jobs` worker threads, and the
//! multi-simulation experiments fan out further internally. Every
//! simulation is fully seeded, so the experiment bodies are
//! byte-identical for any job count — only the wall-clock changes.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use spotdc_obs::{BlackBoxConfig, FlightRecorder, MetricsServer};
use spotdc_sim::engine::{DurabilityConfig, EngineConfig, Simulation};
use spotdc_sim::experiments::{all_ids, run_selected, ExpConfig, TimedOutput};
use spotdc_sim::report::telemetry_summary;
use spotdc_sim::{Mode, Scenario};
use spotdc_telemetry::{FileSink, SinkKind, TelemetryConfig};

/// Routes progress output through one place so `--quiet` silences
/// everything except errors. A lock serializes whole lines, so
/// messages from concurrent experiments never interleave mid-line.
struct Reporter {
    quiet: bool,
    lock: Mutex<()>,
}

impl Reporter {
    fn new(quiet: bool) -> Self {
        Reporter {
            quiet,
            lock: Mutex::new(()),
        }
    }

    fn progress(&self, text: &str) {
        if !self.quiet {
            let _held = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            println!("{text}");
        }
    }

    fn status(&self, text: &str) {
        if !self.quiet {
            let _held = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            eprintln!("{text}");
        }
    }

    fn error(&self, text: &str) {
        let _held = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        eprintln!("{text}");
    }
}

fn main() -> ExitCode {
    let mut cfg = ExpConfig::default();
    let mut selected: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut telemetry_path: Option<std::path::PathBuf> = None;
    let mut blackbox_dir: Option<std::path::PathBuf> = None;
    let mut metrics_addr: Option<String> = None;
    let mut bench_path: Option<std::path::PathBuf> = None;
    let mut jobs: usize = spotdc_par::available();
    let mut quiet = false;
    let mut single_mode: Option<Mode> = None;
    let mut single_slots: u64 = 300;
    let mut single_per_pdu = false;
    let mut shards: usize = 1;
    let mut shard_transport = spotdc_dist::TransportKind::InProc;
    let mut durability = DurabilityConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" | "--list-exps" => {
                for id in all_ids() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--quick" => {
                cfg.days = 1.0;
                cfg.quick = true;
            }
            "--exp" => match args.next() {
                Some(id) => selected.push(id),
                None => return usage("--exp needs an experiment id"),
            },
            "--days" => match args.next().and_then(|v| v.parse().ok()) {
                Some(days) => cfg.days = days,
                None => return usage("--days needs a number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => cfg.seed = seed,
                None => return usage("--seed needs an integer"),
            },
            "--jobs" | "-j" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return usage("--jobs needs a positive integer"),
            },
            "--inner-jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.inner_jobs = n,
                _ => return usage("--inner-jobs needs a positive integer"),
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => return usage("--out needs a directory"),
            },
            "--telemetry" => match args.next() {
                Some(path) => telemetry_path = Some(path.into()),
                None => return usage("--telemetry needs a file path"),
            },
            "--blackbox" => match args.next() {
                Some(dir) => blackbox_dir = Some(dir.into()),
                None => return usage("--blackbox needs a directory"),
            },
            "--serve-metrics" => match args.next() {
                Some(addr) => metrics_addr = Some(addr),
                None => return usage("--serve-metrics needs an address (host:port)"),
            },
            "--bench-json" => match args.next() {
                Some(path) => bench_path = Some(path.into()),
                None => return usage("--bench-json needs a file path"),
            },
            "--mode" => match args.next().as_deref() {
                Some("powercapped") => single_mode = Some(Mode::PowerCapped),
                Some("spotdc") => single_mode = Some(Mode::SpotDc),
                Some("maxperf") => single_mode = Some(Mode::MaxPerf),
                _ => return usage("--mode needs powercapped, spotdc, or maxperf"),
            },
            "--slots" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => single_slots = n,
                _ => return usage("--slots needs a positive integer"),
            },
            "--per-pdu" => single_per_pdu = true,
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => return usage("--shards needs a positive integer"),
            },
            "--shard-transport" => {
                match args
                    .next()
                    .as_deref()
                    .and_then(spotdc_dist::TransportKind::parse)
                {
                    Some(kind) => shard_transport = kind,
                    None => return usage("--shard-transport needs inproc or subprocess"),
                }
            }
            "--checkpoint-dir" => match args.next() {
                Some(dir) => durability.dir = Some(dir.into()),
                None => return usage("--checkpoint-dir needs a directory"),
            },
            "--checkpoint-every" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => durability.checkpoint_every = n,
                None => return usage("--checkpoint-every needs an integer"),
            },
            "--resume" => durability.resume = true,
            "--slot-delay-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => durability.slot_delay_ms = ms,
                None => return usage("--slot-delay-ms needs an integer"),
            },
            "--validate" => spotdc_sim::validate::set_forced(true),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument: {other}")),
        }
    }
    let reporter = Reporter::new(quiet);
    if single_mode.is_none() && (durability.dir.is_some() || durability.resume) {
        return usage("--checkpoint-dir/--resume require --mode (single-run durability)");
    }
    if single_mode.is_none()
        && (single_per_pdu || shards > 1 || shard_transport != spotdc_dist::TransportKind::InProc)
    {
        return usage("--per-pdu/--shards/--shard-transport require --mode (single runs)");
    }
    if single_mode.is_some()
        && (!selected.is_empty()
            || out_dir.is_some()
            || blackbox_dir.is_some()
            || metrics_addr.is_some()
            || bench_path.is_some())
    {
        return usage(
            "--mode single runs take only --slots/--seed/--telemetry, the checkpoint \
             flags, and the shard flags",
        );
    }
    // Experiment-level workers come from the pool below; this seeds the
    // in-experiment fan-out (run_modes & co) with the same budget.
    spotdc_par::set_default_threads(jobs);
    // Install telemetry up front, before any worker thread races to
    // install an engine default (the in-engine install is a no-op once
    // a sink is in place). Keep the typed sink handle so write errors
    // can fail the run at exit instead of shipping a truncated log.
    let mut file_sink: Option<Arc<FileSink>> = None;
    if let Some(path) = &telemetry_path {
        match FileSink::create(path) {
            Ok(sink) => {
                let sink = Arc::new(sink);
                file_sink = Some(sink.clone());
                spotdc_telemetry::install_with_sink(
                    TelemetryConfig {
                        enabled: true,
                        sink: SinkKind::File,
                        sample_every: 1,
                    },
                    sink,
                );
            }
            Err(e) => {
                reporter.error(&format!("cannot create {}: {e}", path.display()));
                return ExitCode::FAILURE;
            }
        }
    } else if blackbox_dir.is_some() || metrics_addr.is_some() {
        // The flight recorder and the scrape endpoint need telemetry
        // flowing even when no JSONL artifact was requested: enable it
        // with a Null primary sink (the recorder channel and the span
        // registry still see everything).
        spotdc_telemetry::install(TelemetryConfig {
            enabled: true,
            sink: SinkKind::Null,
            sample_every: 1,
        });
    }
    if let Some(mode) = single_mode {
        // Single-run mode shares the telemetry plumbing above but none
        // of the experiment machinery below; finish the sink before
        // returning so the JSONL artifact is complete.
        let code = run_single(
            SingleRun {
                mode,
                slots: single_slots,
                seed: cfg.seed,
                per_pdu: single_per_pdu,
                shards,
                shard_transport,
                durability,
            },
            &reporter,
        );
        if telemetry_path.is_some() {
            spotdc_telemetry::flush();
            if let Some(summary) = telemetry_summary() {
                // stderr, not stdout: the rendered report must stay the
                // only stdout so crash-recovery byte-diffs hold.
                reporter.status(&format!("## telemetry span timings\n\n{summary}"));
            }
        }
        if let Some(sink) = &file_sink {
            if sink.write_errors() > 0 {
                reporter.error(&format!(
                    "error: {} telemetry write(s) failed (log truncated): {}",
                    sink.write_errors(),
                    sink.first_error().unwrap_or_default()
                ));
                return ExitCode::FAILURE;
            }
        }
        return code;
    }
    let recorder = blackbox_dir
        .as_ref()
        .map(|dir| FlightRecorder::arm(dir, BlackBoxConfig::enabled()));
    let server = match &metrics_addr {
        Some(addr) => match MetricsServer::start(addr.as_str()) {
            Ok(server) => {
                reporter.status(&format!(
                    "# serving http://{}/metrics and /healthz",
                    server.addr()
                ));
                Some(server)
            }
            Err(e) => {
                reporter.error(&format!("cannot bind {addr}: {e}"));
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let ids: Vec<String> = if selected.is_empty() {
        all_ids().into_iter().map(str::to_owned).collect()
    } else {
        selected
    };
    // Audit the selection up front: an unknown id fails the run before
    // any experiment burns time, and the message lists what is valid.
    let unknown: Vec<&str> = ids
        .iter()
        .map(String::as_str)
        .filter(|id| !all_ids().contains(id))
        .collect();
    if !unknown.is_empty() {
        reporter.error(&format!(
            "error: unknown experiment id(s): {}\nvalid ids: {}",
            unknown.join(", "),
            all_ids().join(", ")
        ));
        return ExitCode::FAILURE;
    }
    reporter.progress(&format!(
        "# SpotDC reproduction — seed {}, horizon {} days{}\n",
        cfg.seed,
        cfg.days,
        if cfg.quick { " (quick)" } else { "" }
    ));
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            reporter.error(&format!("cannot create {}: {e}", dir.display()));
            return ExitCode::FAILURE;
        }
    }
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let started = Instant::now();
    let timed = run_selected(&id_refs, &cfg, spotdc_par::ThreadPool::new(jobs));
    let total = started.elapsed();
    // Render in id order from this thread only: stdout bodies are
    // byte-identical to a serial run regardless of the job count.
    for (id, slot) in ids.iter().zip(&timed) {
        match slot {
            Some(t) => {
                reporter.progress(&t.output.to_string());
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.txt"));
                    if let Err(e) = std::fs::write(&path, t.output.to_string()) {
                        reporter.error(&format!("cannot write {}: {e}", path.display()));
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => {
                // Unreachable given the up-front audit, but kept so a
                // registry/runner mismatch still fails loudly.
                reporter.error(&format!("unknown experiment id: {id} (try --list-exps)"));
                return ExitCode::FAILURE;
            }
        }
    }
    reporter.status(&format!(
        "# {} experiments in {:.2}s on {jobs} worker(s)",
        ids.len(),
        total.as_secs_f64()
    ));
    if let Some(path) = &bench_path {
        if let Err(e) = write_bench_json(path, &cfg, jobs, total.as_secs_f64(), &ids, &timed) {
            reporter.error(&format!("cannot write {}: {e}", path.display()));
            return ExitCode::FAILURE;
        }
    }
    if telemetry_path.is_some() || blackbox_dir.is_some() || metrics_addr.is_some() {
        spotdc_telemetry::flush();
        if let Some(summary) = telemetry_summary() {
            reporter.progress(&format!("## telemetry span timings\n\n{summary}"));
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
    if let Some(recorder) = &recorder {
        reporter.status(&format!(
            "# black box: {} dump(s) in {}",
            recorder.dumps().len(),
            recorder.dir().display()
        ));
        if recorder.write_errors() > 0 {
            reporter.error(&format!(
                "error: {} black-box dump write(s) failed: {}",
                recorder.write_errors(),
                recorder.first_error().unwrap_or_default()
            ));
            return ExitCode::FAILURE;
        }
    }
    if let Some(sink) = &file_sink {
        if sink.write_errors() > 0 {
            reporter.error(&format!(
                "error: {} telemetry write(s) failed (log truncated): {}",
                sink.write_errors(),
                sink.first_error().unwrap_or_default()
            ));
            return ExitCode::FAILURE;
        }
    }
    // With --validate, turn any market-invariant violation into a
    // failing exit even in release, where debug_assert! is compiled out.
    let violations = spotdc_sim::validate::violations();
    if spotdc_sim::validate::forced() && violations > 0 {
        reporter.error(&format!(
            "error: {violations} market invariant violation(s)"
        ));
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Everything one `--mode` run needs, bundled off the flag parser.
struct SingleRun {
    mode: Mode,
    slots: u64,
    seed: u64,
    per_pdu: bool,
    shards: usize,
    shard_transport: spotdc_dist::TransportKind,
    durability: DurabilityConfig,
}

/// One durable (or plain, without `--checkpoint-dir`) simulation whose
/// report renders to stdout deterministically. Everything the
/// durability layer did — recovery, checkpoints — goes to stderr, so
/// `scripts/crash_harness` can byte-compare stdout against an
/// uninterrupted golden run, and `scripts/smoke_dist` can byte-compare
/// shard/transport grid runs against `--shards 1`.
fn run_single(run: SingleRun, reporter: &Reporter) -> ExitCode {
    let SingleRun {
        mode,
        slots,
        seed,
        per_pdu,
        shards,
        shard_transport,
        durability,
    } = run;
    let scenario = Scenario::testbed(seed);
    let config = EngineConfig {
        durability: durability.clone(),
        per_pdu_pricing: per_pdu,
        shards,
        shard_transport,
        ..EngineConfig::new(mode)
    };
    let report = if durability.dir.is_some() {
        match Simulation::new(scenario, config).run_durable(slots) {
            Ok(outcome) => {
                if let Some(r) = &outcome.recovery {
                    reporter.status(&format!(
                        "# recovered: snapshot {}, {} slot(s) replayed{}",
                        r.snapshot_slot
                            .map_or_else(|| "none".to_owned(), |s| s.to_string()),
                        r.replayed_slots,
                        r.truncated.as_ref().map_or_else(String::new, |d| format!(
                            ", journal tail {} ({} bytes dropped)",
                            d.reason, d.dropped_bytes
                        ))
                    ));
                }
                reporter.status(&format!(
                    "# {} checkpoint(s) written",
                    outcome.checkpoints_written
                ));
                outcome.report
            }
            Err(e) => {
                reporter.error(&format!("error: {e}"));
                return ExitCode::FAILURE;
            }
        }
    } else {
        match Simulation::try_new(scenario, config) {
            Ok(sim) => sim.run(slots),
            Err(e) => {
                reporter.error(&format!("error: {e}"));
                return ExitCode::FAILURE;
            }
        }
    };
    // Derived Debug is deterministic field-by-field rendering (floats
    // print shortest-roundtrip), so two equal reports print
    // byte-identically — exactly what the harness diffs.
    println!("# repro --mode run: seed {seed}, {slots} slots");
    println!("{report:#?}");
    ExitCode::SUCCESS
}

/// Writes the per-experiment wall-clock timings as a small JSON file.
fn write_bench_json(
    path: &std::path::Path,
    cfg: &ExpConfig,
    jobs: usize,
    total_seconds: f64,
    ids: &[String],
    timed: &[Option<TimedOutput>],
) -> std::io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(file, "{{")?;
    writeln!(file, "  \"jobs\": {jobs},")?;
    writeln!(file, "  \"inner_jobs\": {},", cfg.inner_jobs)?;
    writeln!(file, "  \"seed\": {},", cfg.seed)?;
    writeln!(file, "  \"days\": {},", cfg.days)?;
    writeln!(file, "  \"quick\": {},", cfg.quick)?;
    writeln!(file, "  \"total_seconds\": {total_seconds:.3},")?;
    writeln!(file, "  \"experiments\": [")?;
    let rows: Vec<String> = ids
        .iter()
        .zip(timed)
        .filter_map(|(id, slot)| slot.as_ref().map(|t| (id, t)))
        .map(|(id, t)| {
            format!(
                "    {{ \"id\": \"{id}\", \"seconds\": {:.3} }}",
                t.wall.as_secs_f64()
            )
        })
        .collect();
    writeln!(file, "{}", rows.join(",\n"))?;
    writeln!(file, "  ]")?;
    writeln!(file, "}}")?;
    file.flush()
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: repro [--exp <id>]... [--days <n>] [--seed <n>] [--quick] [--jobs <n>]\n\
         \x20            [--inner-jobs <n>] [--list-exps]\n\
         \x20            [--out <dir>] [--telemetry <file>] [--blackbox <dir>]\n\
         \x20            [--serve-metrics <host:port>] [--bench-json <file>] [--validate]\n\
         \x20            [--quiet]\n\
         \x20      repro --mode <powercapped|spotdc|maxperf> [--slots <n>] [--seed <n>]\n\
         \x20            [--per-pdu] [--shards <n>] [--shard-transport <inproc|subprocess>]\n\
         \x20            [--checkpoint-dir <dir>] [--checkpoint-every <n>] [--resume]\n\
         \x20            [--slot-delay-ms <n>]\n\
         experiments: {}",
        all_ids().join(", ")
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
