//! How a tenant turns its private valuation into a bid.
//!
//! Takes the paper's Search tenant at peak load, shows its gain curve
//! (Fig. 9), then the bid each strategy would submit and the resulting
//! demand at a range of market prices.
//!
//! ```text
//! cargo run --example bidding_strategies
//! ```

use spotdc::prelude::*;
use spotdc::tenants::model::WorkloadModel as Model;

fn main() {
    let reserved = Watts::new(145.0);
    let headroom = Watts::new(72.5);
    let model = Model::search();
    let intensity = 1.0;

    // The tenant's private valuation: what spot capacity is worth.
    let gain = model.gain_curve(reserved, headroom, intensity);
    println!("Search tenant at peak load — gain from spot capacity:");
    for i in 0..=6 {
        let s = headroom * (f64::from(i) / 6.0);
        println!("  +{:>5.1} W -> {:>8.4} $/h", s.value(), gain.gain(s));
    }
    let needed = model.needed_power(reserved, headroom, intensity);
    println!("power needed to restore the 100 ms SLO: {needed:.1}\n");

    // Each strategy produces a different demand function.
    let strategies: Vec<(&str, Strategy)> = vec![
        (
            "Simple (needed @ 0.5)",
            Strategy::simple(Price::per_kw_hour(0.5)),
        ),
        (
            "Elastic (0.25 - 0.60)",
            Strategy::elastic(Price::per_kw_hour(0.25), Price::per_kw_hour(0.60)),
        ),
        (
            "StepBid-1 (@ q_min)",
            Strategy::Step {
                price: Price::per_kw_hour(0.25),
            },
        ),
        (
            "FullBid (0.25 - 0.60)",
            Strategy::Full {
                q_min: Price::per_kw_hour(0.25),
                q_max: Price::per_kw_hour(0.60),
            },
        ),
    ];

    let mut agent = TenantAgent::new(
        TenantId::new(0),
        RackId::new(0),
        reserved,
        headroom,
        model,
        strategies[0].1.clone(),
    );
    agent.observe(intensity);

    println!("demand (W) each strategy submits, by market price ($/kW/h):");
    print!("{:<24}", "strategy");
    let probes = [0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65];
    for q in probes {
        print!("{q:>7.2}");
    }
    println!();
    for (name, strategy) in strategies {
        agent.set_strategy(strategy);
        let bid = agent.make_bid().expect("peak-load search tenant bids");
        print!("{name:<24}");
        for q in probes {
            let d = bid.total_demand_at(Price::per_kw_hour(q));
            print!("{:>7.1}", d.value());
        }
        println!();
    }
}
