//! Counters, gauges, and fixed-bucket histograms with Prometheus-style
//! text exposition.
//!
//! The [`Registry`] is a plain mutex-guarded map: the hot path of the
//! simulator only touches it when telemetry is enabled, and even then a
//! slot is milliseconds of work against a microsecond lock. No atomics
//! tree, no sharding — measured before optimized.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Default histogram buckets for durations in seconds: log-spaced
/// 1µs → 1s (1-2.5-5 per decade), plus the implicit `+Inf` overflow.
pub const DURATION_BUCKETS: &[f64] = &[
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 0.1, 0.25, 0.5, 1.0,
];

/// A fixed-bucket histogram (Prometheus semantics: bucket `i` counts
/// observations `<= bounds[i]`, with an implicit `+Inf` bucket at the
/// end).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Ascending finite upper bounds.
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing `+Inf` overflow bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending finite bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-ascending, or contains a
    /// non-finite value.
    #[must_use]
    pub fn with_buckets(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be ascending and finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// A histogram with [`DURATION_BUCKETS`].
    #[must_use]
    pub fn for_durations() -> Self {
        Histogram::with_buckets(DURATION_BUCKETS)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the containing bucket, as `histogram_quantile` does.
    /// Returns `None` when the histogram is empty.
    ///
    /// Observations in the `+Inf` overflow bucket clamp to the largest
    /// finite bound — quantiles can never exceed it.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &bucket_count) in self.counts.iter().enumerate() {
            let prev = cumulative as f64;
            cumulative += bucket_count;
            if (cumulative as f64) >= rank && bucket_count > 0 {
                let last = *self.bounds.last().expect("non-empty bounds");
                if i == self.bounds.len() {
                    return Some(last); // +Inf bucket clamps
                }
                let upper = self.bounds[i];
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = ((rank - prev) / bucket_count as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
        }
        Some(*self.bounds.last().expect("non-empty bounds"))
    }

    /// The arithmetic mean (exact, from the running sum — not a bucket
    /// estimate). Returns `None` when the histogram is empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// The median estimate (p50).
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// The 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// The 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Cumulative bucket counts paired with their upper bounds, the
    /// `+Inf` bucket last (bound `None`).
    fn cumulative(&self) -> Vec<(Option<f64>, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut cumulative = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            out.push((self.bounds.get(i).copied(), cumulative));
        }
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Span-duration histograms keyed by span name, rendered as one
    /// metric family with a `span` label.
    spans: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of counters, gauges, and histograms.
///
/// One process-global instance lives behind [`crate::registry`]; tests
/// construct their own.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry only means a panic elsewhere mid-update;
        // telemetry should keep limping rather than cascade the panic.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc_counter(&self, name: &str, by: u64) {
        *self.lock().counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Sets the named gauge to `value` only if it exceeds the current
    /// value (high-water-mark gauges, e.g. max span nesting depth).
    pub fn set_gauge_max(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        let slot = inner.gauges.entry(name.to_owned()).or_insert(f64::MIN);
        if value > *slot {
            *slot = value;
        }
    }

    /// Records `value` into the named histogram, created on first use
    /// with [`DURATION_BUCKETS`].
    pub fn observe(&self, name: &str, value: f64) {
        self.lock()
            .histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::for_durations)
            .observe(value);
    }

    /// Records `value` into the named histogram, created on first use
    /// with the given bounds (ignored if the histogram already exists).
    pub fn observe_with_buckets(&self, name: &str, value: f64, bounds: &[f64]) {
        self.lock()
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::with_buckets(bounds))
            .observe(value);
    }

    /// Records one span duration (seconds) under the span's name.
    pub fn record_span(&self, span: &str, seconds: f64) {
        self.lock()
            .spans
            .entry(span.to_owned())
            .or_insert_with(Histogram::for_durations)
            .observe(seconds);
    }

    /// The current value of a counter (zero if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// The current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// A snapshot of the named histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// A snapshot of the named span's duration histogram.
    #[must_use]
    pub fn span_durations(&self, span: &str) -> Option<Histogram> {
        self.lock().spans.get(span).cloned()
    }

    /// The names of every span recorded so far, in sorted order.
    #[must_use]
    pub fn span_names(&self) -> Vec<String> {
        self.lock().spans.keys().cloned().collect()
    }

    /// Drops every metric. Intended for tests sharing the process-global
    /// registry.
    pub fn reset(&self) {
        *self.lock() = Inner::default();
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): counters, gauges, then histograms with
    /// cumulative `_bucket{le=...}` series plus `_sum` and `_count`,
    /// and span durations as one `spotdc_span_duration_seconds` family
    /// labelled by span name.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, value) in &inner.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &inner.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, histogram) in &inner.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, cumulative) in histogram.cumulative() {
                let le = bound.map_or("+Inf".to_owned(), |b| b.to_string());
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_sum {}", histogram.sum());
            let _ = writeln!(out, "{name}_count {}", histogram.count());
        }
        if !inner.spans.is_empty() {
            let family = "spotdc_span_duration_seconds";
            let _ = writeln!(out, "# TYPE {family} histogram");
            for (span, histogram) in &inner.spans {
                // Label values (unlike metric names) admit any UTF-8;
                // only `\`, `"` and newline need escaping.
                let span = escape_label(span);
                for (bound, cumulative) in histogram.cumulative() {
                    let le = bound.map_or("+Inf".to_owned(), |b| b.to_string());
                    let _ = writeln!(
                        out,
                        "{family}_bucket{{span=\"{span}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(out, "{family}_sum{{span=\"{span}\"}} {}", histogram.sum());
                let _ = writeln!(
                    out,
                    "{family}_count{{span=\"{span}\"}} {}",
                    histogram.count()
                );
            }
        }
        out
    }
}

/// Escapes a string for use as a Prometheus label value.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Maps arbitrary names onto the Prometheus metric-name alphabet.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let mut h = Histogram::with_buckets(&[1.0, 2.0, 4.0]);
        h.observe(1.0); // lands in le=1 (inclusive upper bound)
        h.observe(1.5); // le=2
        h.observe(2.0); // le=2
        h.observe(4.0); // le=4
        h.observe(9.0); // +Inf overflow
        assert_eq!(h.counts, vec![1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::with_buckets(&[10.0, 20.0, 30.0]);
        for _ in 0..50 {
            h.observe(5.0);
        }
        for _ in 0..50 {
            h.observe(15.0);
        }
        // Half the mass is in (0,10], half in (10,20]: the median sits
        // exactly at the boundary and p99 deep in the second bucket.
        assert!((h.p50().unwrap() - 10.0).abs() < 1e-9);
        let p99 = h.p99().unwrap();
        assert!(p99 > 19.0 && p99 <= 20.0, "p99 = {p99}");
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = Histogram::with_buckets(&[1.0]);
        assert_eq!(empty.quantile(0.5), None);

        let mut overflow = Histogram::with_buckets(&[1.0, 2.0]);
        overflow.observe(100.0);
        // Overflow observations clamp to the largest finite bound.
        assert_eq!(overflow.p99(), Some(2.0));
        assert_eq!(overflow.p50(), Some(2.0));
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::for_durations();
        let mut x = 1e-7;
        for _ in 0..200 {
            h.observe(x);
            x *= 1.09;
        }
        let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99];
        let vals: Vec<f64> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{vals:?}");
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let r = Registry::new();
        r.inc_counter("slots", 2);
        r.inc_counter("slots", 3);
        assert_eq!(r.counter("slots"), 5);
        assert_eq!(r.counter("never"), 0);

        r.set_gauge("err", 1.5);
        r.set_gauge("err", 0.5);
        assert_eq!(r.gauge("err"), Some(0.5));
        r.set_gauge_max("peak", 1.0);
        r.set_gauge_max("peak", 0.25);
        assert_eq!(r.gauge("peak"), Some(1.0));

        r.observe("lat", 1e-4);
        assert_eq!(r.histogram("lat").unwrap().count(), 1);
        assert!(r.histogram("missing").is_none());
    }

    #[test]
    fn render_prometheus_golden() {
        let r = Registry::new();
        r.inc_counter("spotdc_slots_cleared_total", 3);
        r.set_gauge("spotdc_prediction_error_watts", 12.5);
        r.observe_with_buckets("spotdc_clearing_duration_seconds", 0.5, &[1.0, 2.0]);
        r.observe_with_buckets("spotdc_clearing_duration_seconds", 1.5, &[1.0, 2.0]);
        r.observe_with_buckets("spotdc_clearing_duration_seconds", 9.0, &[1.0, 2.0]);
        r.record_span("clearing", 0.75);
        let expected = "\
# TYPE spotdc_slots_cleared_total counter
spotdc_slots_cleared_total 3
# TYPE spotdc_prediction_error_watts gauge
spotdc_prediction_error_watts 12.5
# TYPE spotdc_clearing_duration_seconds histogram
spotdc_clearing_duration_seconds_bucket{le=\"1\"} 1
spotdc_clearing_duration_seconds_bucket{le=\"2\"} 2
spotdc_clearing_duration_seconds_bucket{le=\"+Inf\"} 3
spotdc_clearing_duration_seconds_sum 11
spotdc_clearing_duration_seconds_count 3
# TYPE spotdc_span_duration_seconds histogram
spotdc_span_duration_seconds_bucket{span=\"clearing\",le=\"0.000001\"} 0
";
        let rendered = r.render_prometheus();
        assert!(
            rendered.starts_with(expected),
            "rendered:\n{rendered}\nexpected prefix:\n{expected}"
        );
        assert!(
            rendered.contains("spotdc_span_duration_seconds_bucket{span=\"clearing\",le=\"1\"} 1")
        );
        assert!(rendered.contains("spotdc_span_duration_seconds_sum{span=\"clearing\"} 0.75"));
        assert!(rendered.contains("spotdc_span_duration_seconds_count{span=\"clearing\"} 1"));
    }

    #[test]
    fn sanitize_maps_to_prometheus_alphabet() {
        assert_eq!(sanitize("clear.per-pdu"), "clear_per_pdu");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.inc_counter("a", 1);
        r.observe("b", 0.1);
        r.reset();
        assert_eq!(r.counter("a"), 0);
        assert!(r.histogram("b").is_none());
        assert!(r.render_prometheus().is_empty());
    }
}
