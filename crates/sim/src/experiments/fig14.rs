//! Fig. 14: demand-function comparison under varying spot availability.
//!
//! The design-justification experiment: SpotDC's four-parameter
//! `LinearBid` earns the operator close to the complete-curve `FullBid`
//! and clearly beats the all-or-nothing `StepBid`, especially when spot
//! capacity is scarce (StepBid's binary outcomes waste capacity or
//! overshoot the constraints).

use spotdc_tenants::Strategy;

use crate::accounting::Billing;
use crate::baselines::Mode;
use crate::experiments::common::{fan_out, run_mode, ExpConfig, ExpOutput};
use crate::report::TextTable;
use crate::scenario::{Scenario, ScenarioTuning};

/// The demand-function languages compared. The paper's Fig. 3(b)
/// defines StepBid as a corner of the linear bid: "StepBid-1 bids
/// (D_max, q_min) only, and StepBid-2 bids (D_min, q_max) only".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BidStyle {
    /// StepBid-1: full quantity at the low price corner.
    StepVolume,
    /// StepBid-2: the small quantity worth buying at the high price.
    StepValue,
    /// SpotDC's piece-wise linear bid.
    Linear,
    /// Complete demand curve (research upper bound).
    Full,
}

impl BidStyle {
    /// All styles in presentation order.
    #[must_use]
    pub fn all() -> [BidStyle; 4] {
        [
            BidStyle::StepVolume,
            BidStyle::StepValue,
            BidStyle::Linear,
            BidStyle::Full,
        ]
    }

    fn label(self) -> &'static str {
        match self {
            BidStyle::StepVolume => "StepBid-1",
            BidStyle::StepValue => "StepBid-2",
            BidStyle::Linear => "LinearBid (SpotDC)",
            BidStyle::Full => "FullBid",
        }
    }
}

/// Builds the testbed with every agent's strategy switched to `style`
/// and the non-participant level set by `other_mean_fraction`.
#[must_use]
pub fn styled_scenario(seed: u64, other_mean_fraction: f64, style: BidStyle) -> Scenario {
    let tuning = ScenarioTuning {
        other_mean_fraction,
        ..ScenarioTuning::default()
    };
    let mut scenario = Scenario::testbed_with(seed, tuning);
    for agent in &mut scenario.agents {
        let replacement = match (style, agent.strategy().clone()) {
            (BidStyle::Linear, s @ Strategy::Elastic { .. }) => s,
            (BidStyle::StepVolume, Strategy::Elastic { q_min, .. }) => {
                Strategy::Step { price: q_min }
            }
            (BidStyle::StepValue, Strategy::Elastic { q_max, .. }) => {
                Strategy::StepAtValue { price: q_max }
            }
            (BidStyle::Full, Strategy::Elastic { q_min, q_max }) => Strategy::Full { q_min, q_max },
            (_, s) => s,
        };
        agent.set_strategy(replacement);
    }
    scenario
}

/// One sweep point.
#[derive(Debug, Clone)]
pub struct AvailabilityPoint {
    /// Non-participant mean fraction used (lower ⇒ more spot capacity).
    pub other_mean_fraction: f64,
    /// Measured average spot availability (fraction of subscriptions).
    pub availability: f64,
    /// Operator extra profit % per bid style, in [`BidStyle::all`]
    /// order.
    pub extra_percent: [f64; 4],
}

/// Runs the sweep.
#[must_use]
pub fn compute(cfg: &ExpConfig) -> Vec<AvailabilityPoint> {
    let billing = Billing::paper_defaults();
    let fractions: Vec<f64> = if cfg.quick {
        vec![0.80, 0.42]
    } else {
        vec![0.90, 0.80, 0.65, 0.55, 0.42]
    };
    // Flatten the fraction × style grid into one parallel fan-out, then
    // regroup per fraction (each chunk holds the styles in order).
    let jobs: Vec<(f64, BidStyle)> = fractions
        .iter()
        .flat_map(|&f| BidStyle::all().into_iter().map(move |style| (f, style)))
        .collect();
    let reports = fan_out(&jobs, |&(f, style)| {
        run_mode(cfg, styled_scenario(cfg.seed, f, style), Mode::SpotDc)
    });
    fractions
        .iter()
        .zip(reports.chunks(BidStyle::all().len()))
        .map(|(&f, chunk)| {
            let mut extra = [0.0f64; 4];
            for (e, report) in extra.iter_mut().zip(chunk) {
                *e = report.profit(&billing).extra_percent();
            }
            AvailabilityPoint {
                other_mean_fraction: f,
                availability: chunk
                    .last()
                    .expect("one report per style")
                    .avg_spot_available_fraction(),
                extra_percent: extra,
            }
        })
        .collect()
}

/// Renders Fig. 14.
#[must_use]
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let points = compute(cfg);
    let styles = BidStyle::all();
    let mut headers = vec!["availability".to_owned()];
    headers.extend(styles.iter().map(|s| format!("{} extra%", s.label())));
    let mut table = TextTable::new(headers.iter().map(String::as_str).collect());
    for p in &points {
        let mut row = vec![format!("{:.1}%", 100.0 * p.availability)];
        row.extend(p.extra_percent.iter().map(|e| format!("{e:+.2}%")));
        table.row(row);
    }
    ExpOutput {
        id: "fig14".into(),
        title: "Operator profit under different demand functions".into(),
        body: table.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_beats_both_step_corners_and_tracks_full() {
        let points = compute(&ExpConfig {
            days: 3.0,
            ..ExpConfig::quick()
        });
        // Aggregate across the sweep, [step1, step2, linear, full].
        let sum = |i: usize| -> f64 { points.iter().map(|p| p.extra_percent[i]).sum() };
        let (step1, step2, linear, full) = (sum(0), sum(1), sum(2), sum(3));
        assert!(
            linear >= step1,
            "LinearBid {linear:.2} should beat StepBid-1 {step1:.2}"
        );
        assert!(
            linear >= step2,
            "LinearBid {linear:.2} should beat StepBid-2 {step2:.2}"
        );
        assert!(
            linear >= 0.75 * full,
            "LinearBid {linear:.2} should track FullBid {full:.2}"
        );
    }

    #[test]
    fn more_availability_more_profit() {
        let points = compute(&ExpConfig {
            days: 3.0,
            ..ExpConfig::quick()
        });
        // The sweep is ordered from scarce to plentiful.
        assert!(points[0].availability < points.last().unwrap().availability);
        assert!(
            points.last().unwrap().extra_percent[2] >= points[0].extra_percent[2],
            "profit should not fall as availability grows"
        );
    }

    #[test]
    fn styled_scenario_swaps_strategies() {
        let s = styled_scenario(1, 0.42, BidStyle::StepVolume);
        assert!(s
            .agents
            .iter()
            .all(|a| matches!(a.strategy(), Strategy::Step { .. })));
        let v = styled_scenario(1, 0.42, BidStyle::StepValue);
        assert!(v
            .agents
            .iter()
            .all(|a| matches!(a.strategy(), Strategy::StepAtValue { .. })));
        let f = styled_scenario(1, 0.42, BidStyle::Full);
        assert!(f
            .agents
            .iter()
            .all(|a| matches!(a.strategy(), Strategy::Full { .. })));
    }
}
