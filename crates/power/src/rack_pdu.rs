//! Intelligent rack PDUs: dynamically settable per-rack power budgets.
//!
//! The actuation half of SpotDC: after the market clears, the operator
//! programs each rack's power budget (guaranteed capacity plus any spot
//! grant) into the rack PDU. Commercial switched/metered rack PDUs (the
//! paper used APC AP8632 units) accept budget updates 20+ times per
//! second, so a whole data center can be re-budgeted well within one
//! slot. [`RackPduBank`] models the whole fleet of rack PDUs, enforcing
//! the invariant that a budget never exceeds the rack's physical limit.

use serde::{Deserialize, Serialize};
use spotdc_units::{RackId, Slot, Watts};

use crate::topology::{PowerTopology, TopologyError};

/// A record of one budget update applied to a rack PDU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetChange {
    /// Rack whose budget changed.
    pub rack: RackId,
    /// Slot at which the new budget takes effect.
    pub effective: Slot,
    /// Budget before the change.
    pub old: Watts,
    /// Budget after the change.
    pub new: Watts,
}

/// The fleet of per-rack intelligent PDUs and their current budgets.
///
/// Budgets default to each rack's guaranteed capacity. Spot grants raise
/// the budget for one slot; [`RackPduBank::reset_to_guaranteed`] is the
/// end-of-slot fallback (also the paper's behaviour under communication
/// loss — "resume to the default case of no spot capacity").
///
/// # Examples
///
/// ```
/// use spotdc_power::{RackPduBank, topology::TopologyBuilder};
/// use spotdc_units::{RackId, Slot, TenantId, Watts};
///
/// let topo = TopologyBuilder::new(Watts::new(500.0))
///     .pdu(Watts::new(500.0))
///     .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
///     .build()?;
/// let mut bank = RackPduBank::new(&topo);
/// let r = RackId::new(0);
/// assert_eq!(bank.budget(r), Watts::new(100.0));
/// bank.grant_spot(Slot::ZERO, r, Watts::new(30.0))?;
/// assert_eq!(bank.budget(r), Watts::new(130.0));
/// # Ok::<(), spotdc_power::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RackPduBank {
    guaranteed: Vec<Watts>,
    physical_limit: Vec<Watts>,
    budget: Vec<Watts>,
    changes: Vec<BudgetChange>,
}

impl RackPduBank {
    /// Creates a bank with one PDU per rack in `topology`, all budgets
    /// initialized to the guaranteed capacity.
    #[must_use]
    pub fn new(topology: &PowerTopology) -> Self {
        let guaranteed: Vec<Watts> = topology.racks().map(|r| r.guaranteed()).collect();
        let physical_limit = topology.racks().map(|r| r.physical_limit()).collect();
        RackPduBank {
            budget: guaranteed.clone(),
            guaranteed,
            physical_limit,
            changes: Vec::new(),
        }
    }

    /// The current budget programmed for `rack` (zero for unknown ids).
    #[must_use]
    pub fn budget(&self, rack: RackId) -> Watts {
        self.budget
            .get(rack.index())
            .copied()
            .unwrap_or(Watts::ZERO)
    }

    /// The guaranteed capacity of `rack` (zero for unknown ids).
    #[must_use]
    pub fn guaranteed(&self, rack: RackId) -> Watts {
        self.guaranteed
            .get(rack.index())
            .copied()
            .unwrap_or(Watts::ZERO)
    }

    /// The spot capacity currently granted to `rack` on top of its
    /// guaranteed capacity.
    #[must_use]
    pub fn spot_grant(&self, rack: RackId) -> Watts {
        (self.budget(rack) - self.guaranteed(rack)).clamp_non_negative()
    }

    /// Grants `spot` watts of spot capacity to `rack` for the slot
    /// beginning at `effective`, raising its budget to guaranteed + spot.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownRack`] for an unknown rack, or
    /// [`TopologyError::InvalidCapacity`] if the resulting budget would
    /// exceed the rack's physical limit or `spot` is negative/non-finite.
    pub fn grant_spot(
        &mut self,
        effective: Slot,
        rack: RackId,
        spot: Watts,
    ) -> Result<(), TopologyError> {
        let i = rack.index();
        if i >= self.budget.len() {
            return Err(TopologyError::UnknownRack(rack));
        }
        if !spot.is_finite() || spot.is_negative() {
            return Err(TopologyError::InvalidCapacity {
                what: format!("{rack} spot grant"),
            });
        }
        let new = self.guaranteed[i] + spot;
        if new > self.physical_limit[i] + Watts::new(1e-9) {
            return Err(TopologyError::InvalidCapacity {
                what: format!(
                    "{rack} budget {new} exceeds physical limit {}",
                    self.physical_limit[i]
                ),
            });
        }
        let old = self.budget[i];
        self.budget[i] = new;
        self.changes.push(BudgetChange {
            rack,
            effective,
            old,
            new,
        });
        Ok(())
    }

    /// Caps `rack`'s budget to at most `limit` for the slot beginning
    /// at `effective` — the emergency power-capping path. Unlike
    /// [`RackPduBank::grant_spot`], the resulting budget may fall
    /// *below* the guaranteed capacity: during a detected overload the
    /// operator sheds spot first, then trims guarantees if the base
    /// load alone still exceeds a shared capacity. The cap lasts until
    /// the next [`RackPduBank::reset_all`] (i.e. one slot).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownRack`] for an unknown rack, or
    /// [`TopologyError::InvalidCapacity`] if `limit` is
    /// negative/non-finite.
    pub fn cap_budget(
        &mut self,
        effective: Slot,
        rack: RackId,
        limit: Watts,
    ) -> Result<(), TopologyError> {
        let i = rack.index();
        if i >= self.budget.len() {
            return Err(TopologyError::UnknownRack(rack));
        }
        if !limit.is_finite() || limit.is_negative() {
            return Err(TopologyError::InvalidCapacity {
                what: format!("{rack} budget cap"),
            });
        }
        let old = self.budget[i];
        let new = old.min(limit);
        if new < old {
            self.budget[i] = new;
            self.changes.push(BudgetChange {
                rack,
                effective,
                old,
                new,
            });
        }
        Ok(())
    }

    /// Resets `rack`'s budget back to its guaranteed capacity (the
    /// no-spot default).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownRack`] for an unknown rack.
    pub fn reset_to_guaranteed(
        &mut self,
        effective: Slot,
        rack: RackId,
    ) -> Result<(), TopologyError> {
        let i = rack.index();
        if i >= self.budget.len() {
            return Err(TopologyError::UnknownRack(rack));
        }
        let old = self.budget[i];
        self.budget[i] = self.guaranteed[i];
        if old != self.guaranteed[i] {
            self.changes.push(BudgetChange {
                rack,
                effective,
                old,
                new: self.guaranteed[i],
            });
        }
        Ok(())
    }

    /// Resets every rack to its guaranteed capacity.
    pub fn reset_all(&mut self, effective: Slot) {
        for i in 0..self.budget.len() {
            let rack = RackId::new(i);
            // reset_to_guaranteed cannot fail for an in-range index.
            let _ = self.reset_to_guaranteed(effective, rack);
        }
    }

    /// Whether `power` respects the budget programmed for `rack`, with a
    /// small tolerance for metering noise.
    #[must_use]
    pub fn within_budget(&self, rack: RackId, power: Watts, tolerance: Watts) -> bool {
        power <= self.budget(rack) + tolerance
    }

    /// The audit log of every budget change applied, in order.
    #[must_use]
    pub fn changes(&self) -> &[BudgetChange] {
        &self.changes
    }

    /// Clears the audit log (e.g. between experiments).
    pub fn clear_changes(&mut self) {
        self.changes.clear();
    }

    /// Number of racks managed.
    #[must_use]
    pub fn rack_count(&self) -> usize {
        self.budget.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use spotdc_units::TenantId;

    fn bank() -> RackPduBank {
        let topo = TopologyBuilder::new(Watts::new(1000.0))
            .pdu(Watts::new(500.0))
            .rack(TenantId::new(0), Watts::new(100.0), Watts::new(50.0))
            .rack(TenantId::new(1), Watts::new(120.0), Watts::new(30.0))
            .build()
            .unwrap();
        RackPduBank::new(&topo)
    }

    #[test]
    fn budgets_default_to_guaranteed() {
        let b = bank();
        assert_eq!(b.budget(RackId::new(0)), Watts::new(100.0));
        assert_eq!(b.budget(RackId::new(1)), Watts::new(120.0));
        assert_eq!(b.spot_grant(RackId::new(0)), Watts::ZERO);
    }

    #[test]
    fn grant_raises_budget_and_logs() {
        let mut b = bank();
        b.grant_spot(Slot::new(3), RackId::new(0), Watts::new(40.0))
            .unwrap();
        assert_eq!(b.budget(RackId::new(0)), Watts::new(140.0));
        assert_eq!(b.spot_grant(RackId::new(0)), Watts::new(40.0));
        assert_eq!(b.changes().len(), 1);
        let c = b.changes()[0];
        assert_eq!(c.effective, Slot::new(3));
        assert_eq!(c.old, Watts::new(100.0));
        assert_eq!(c.new, Watts::new(140.0));
    }

    #[test]
    fn grant_is_absolute_not_cumulative() {
        let mut b = bank();
        b.grant_spot(Slot::ZERO, RackId::new(0), Watts::new(40.0))
            .unwrap();
        b.grant_spot(Slot::new(1), RackId::new(0), Watts::new(10.0))
            .unwrap();
        assert_eq!(b.budget(RackId::new(0)), Watts::new(110.0));
    }

    #[test]
    fn grant_beyond_physical_limit_is_rejected() {
        let mut b = bank();
        let err = b
            .grant_spot(Slot::ZERO, RackId::new(0), Watts::new(50.1))
            .unwrap_err();
        assert!(matches!(err, TopologyError::InvalidCapacity { .. }));
        // Budget unchanged after the failed grant.
        assert_eq!(b.budget(RackId::new(0)), Watts::new(100.0));
    }

    #[test]
    fn grant_at_exact_limit_is_accepted() {
        let mut b = bank();
        b.grant_spot(Slot::ZERO, RackId::new(0), Watts::new(50.0))
            .unwrap();
        assert_eq!(b.budget(RackId::new(0)), Watts::new(150.0));
    }

    #[test]
    fn negative_grant_rejected() {
        let mut b = bank();
        assert!(b
            .grant_spot(Slot::ZERO, RackId::new(0), Watts::new(-1.0))
            .is_err());
    }

    #[test]
    fn unknown_rack_rejected() {
        let mut b = bank();
        assert_eq!(
            b.grant_spot(Slot::ZERO, RackId::new(9), Watts::new(1.0)),
            Err(TopologyError::UnknownRack(RackId::new(9)))
        );
    }

    #[test]
    fn reset_returns_to_guaranteed_and_logs_once() {
        let mut b = bank();
        b.grant_spot(Slot::ZERO, RackId::new(0), Watts::new(25.0))
            .unwrap();
        b.reset_to_guaranteed(Slot::new(1), RackId::new(0)).unwrap();
        assert_eq!(b.budget(RackId::new(0)), Watts::new(100.0));
        assert_eq!(b.changes().len(), 2);
        // Resetting an already-default rack adds no log entry.
        b.reset_to_guaranteed(Slot::new(2), RackId::new(0)).unwrap();
        assert_eq!(b.changes().len(), 2);
    }

    #[test]
    fn reset_all_covers_every_rack() {
        let mut b = bank();
        b.grant_spot(Slot::ZERO, RackId::new(0), Watts::new(25.0))
            .unwrap();
        b.grant_spot(Slot::ZERO, RackId::new(1), Watts::new(15.0))
            .unwrap();
        b.reset_all(Slot::new(1));
        assert_eq!(b.budget(RackId::new(0)), Watts::new(100.0));
        assert_eq!(b.budget(RackId::new(1)), Watts::new(120.0));
    }

    #[test]
    fn cap_budget_can_cut_below_guaranteed() {
        let mut b = bank();
        let r = RackId::new(0);
        b.grant_spot(Slot::ZERO, r, Watts::new(40.0)).unwrap();
        // Cap above the current budget is a no-op (no log entry).
        b.cap_budget(Slot::ZERO, r, Watts::new(200.0)).unwrap();
        assert_eq!(b.budget(r), Watts::new(140.0));
        assert_eq!(b.changes().len(), 1);
        // Cap below guaranteed sticks and is logged.
        b.cap_budget(Slot::ZERO, r, Watts::new(80.0)).unwrap();
        assert_eq!(b.budget(r), Watts::new(80.0));
        assert_eq!(b.spot_grant(r), Watts::ZERO);
        assert_eq!(b.changes().len(), 2);
        // reset_all restores the guarantee next slot.
        b.reset_all(Slot::new(1));
        assert_eq!(b.budget(r), Watts::new(100.0));
        assert!(b.cap_budget(Slot::ZERO, r, Watts::new(-1.0)).is_err());
        assert!(matches!(
            b.cap_budget(Slot::ZERO, RackId::new(9), Watts::new(1.0)),
            Err(TopologyError::UnknownRack(_))
        ));
    }

    #[test]
    fn within_budget_uses_tolerance() {
        let b = bank();
        let r = RackId::new(0);
        assert!(b.within_budget(r, Watts::new(100.0), Watts::ZERO));
        assert!(!b.within_budget(r, Watts::new(100.5), Watts::ZERO));
        assert!(b.within_budget(r, Watts::new(100.5), Watts::new(1.0)));
    }
}
